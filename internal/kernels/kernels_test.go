package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const testM = 24

func randBlock(m int, rng *rand.Rand) []float32 {
	b := make([]float32, m*m)
	for i := range b {
		b[i] = rng.Float32()*2 - 1
	}
	return b
}

func spdBlock(m int, rng *rand.Rand) []float32 {
	b := randBlock(m, rng)
	a := make([]float32, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var s float32
			for k := 0; k < m; k++ {
				s += b[i*m+k] * b[j*m+k]
			}
			a[i*m+j] = s / float32(m)
			if i == j {
				a[i*m+j] += 1
			}
		}
	}
	return a
}

func TestGemmNNProvidersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randBlock(testM, rng), randBlock(testM, rng)
	c1 := randBlock(testM, rng)
	c2 := append([]float32(nil), c1...)
	Ref.GemmNN(a, b, c1, testM)
	Fast.GemmNN(a, b, c2, testM)
	if d := MaxAbsDiff(c1, c2); d > 1e-4 {
		t.Fatalf("providers disagree on GemmNN by %g", d)
	}
}

func TestGemmNTProvidersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randBlock(testM, rng), randBlock(testM, rng)
	c1 := randBlock(testM, rng)
	c2 := append([]float32(nil), c1...)
	Ref.GemmNT(a, b, c1, testM)
	Fast.GemmNT(a, b, c2, testM)
	if d := MaxAbsDiff(c1, c2); d > 1e-4 {
		t.Fatalf("providers disagree on GemmNT by %g", d)
	}
}

func TestGemmNNIdentity(t *testing.T) {
	m := 8
	id := make([]float32, m*m)
	for i := 0; i < m; i++ {
		id[i*m+i] = 1
	}
	rng := rand.New(rand.NewSource(3))
	a := randBlock(m, rng)
	c := make([]float32, m*m)
	Fast.GemmNN(a, id, c, m)
	if d := MaxAbsDiff(a, c); d > 1e-6 {
		t.Fatalf("A·I differs from A by %g", d)
	}
}

func TestGemmNTIsTransposedMultiply(t *testing.T) {
	m := 8
	rng := rand.New(rand.NewSource(4))
	a, b := randBlock(m, rng), randBlock(m, rng)
	// C1 = -A·Bᵀ via GemmNT from zero.
	c1 := make([]float32, m*m)
	Fast.GemmNT(a, b, c1, m)
	// C2 = A·(Bᵀ) via GemmNN with an explicitly transposed B.
	bt := make([]float32, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			bt[i*m+j] = b[j*m+i]
		}
	}
	c2 := make([]float32, m*m)
	Fast.GemmNN(a, bt, c2, m)
	for i := range c1 {
		c2[i] = -c2[i]
	}
	if d := MaxAbsDiff(c1, c2); d > 1e-4 {
		t.Fatalf("GemmNT inconsistent with explicit transpose by %g", d)
	}
}

func TestSyrkMatchesGemmNT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randBlock(testM, rng)
	c1 := spdBlock(testM, rng)
	c2 := append([]float32(nil), c1...)
	for _, p := range Providers {
		d1 := append([]float32(nil), c1...)
		d2 := append([]float32(nil), c2...)
		p.Syrk(a, d1, testM)
		p.GemmNT(a, a, d2, testM)
		if d := LowerMaxAbsDiff(d1, d2, testM); d > 1e-4 {
			t.Fatalf("%s: Syrk lower triangle differs from GemmNT(A,A) by %g", p.Name, d)
		}
	}
}

func TestPotrfFactorsSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := spdBlock(testM, rng)
	orig := append([]float32(nil), a...)
	if !potrf(a, testM) {
		t.Fatalf("potrf failed on SPD block")
	}
	ZeroUpper(a, testM)
	back := MulLLT(a, testM)
	if d := MaxAbsDiff(orig, back); d > 1e-3 {
		t.Fatalf("L·Lᵀ differs from A by %g", d)
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	m := 4
	a := make([]float32, m*m)
	a[0] = -1 // negative pivot
	if potrf(a, m) {
		t.Fatalf("potrf accepted an indefinite matrix")
	}
}

func TestTrsmSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Build a well-conditioned lower-triangular L.
	l := make([]float32, testM*testM)
	for i := 0; i < testM; i++ {
		for j := 0; j < i; j++ {
			l[i*testM+j] = rng.Float32()*0.2 - 0.1
		}
		l[i*testM+i] = 1 + rng.Float32()
	}
	b := randBlock(testM, rng)
	for _, p := range Providers {
		x := append([]float32(nil), b...)
		p.Trsm(l, x, testM)
		// Check X·Lᵀ == B.
		got := make([]float32, testM*testM)
		lt := make([]float32, testM*testM)
		for i := 0; i < testM; i++ {
			for j := 0; j < testM; j++ {
				lt[i*testM+j] = l[j*testM+i]
			}
		}
		Fast.GemmNN(x, lt, got, testM)
		if d := MaxAbsDiff(got, b); d > 1e-3 {
			t.Fatalf("%s: X·Lᵀ differs from B by %g", p.Name, d)
		}
	}
}

func TestAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := randBlock(8, rng), randBlock(8, rng)
	for _, p := range Providers {
		c := make([]float32, 64)
		p.Add(a, b, c, 8)
		for i := range c {
			if c[i] != a[i]+b[i] {
				t.Fatalf("%s: Add wrong at %d", p.Name, i)
			}
		}
		p.Sub(a, b, c, 8)
		for i := range c {
			if c[i] != a[i]-b[i] {
				t.Fatalf("%s: Sub wrong at %d", p.Name, i)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("goto").Name != "goto" || ByName("mkl").Name != "mkl" || ByName("tuned").Name != "tuned" {
		t.Fatalf("ByName lookup broken")
	}
	if ByName("nonsense").Name != "tuned" {
		t.Fatalf("ByName default must be the tuned provider")
	}
}

func TestCholeskyFlatRoundTrip(t *testing.T) {
	n := 48
	a := GenSPD(n, 42)
	orig := append([]float32(nil), a...)
	if !CholeskyFlat(a, n) {
		t.Fatalf("CholeskyFlat failed on SPD input")
	}
	ZeroUpper(a, n)
	back := MulLLT(a, n)
	if d := MaxAbsDiff(orig, back); d > 1e-3 {
		t.Fatalf("flat Cholesky round trip off by %g", d)
	}
}

func TestLUFlatRoundTrip(t *testing.T) {
	n := 32
	a := GenSPD(n, 7) // SPD needs no pivoting
	orig := append([]float32(nil), a...)
	if !LUFlat(a, n) {
		t.Fatalf("LUFlat hit a zero pivot on SPD input")
	}
	// Rebuild L·U.
	back := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				var lik float32
				if k < i {
					lik = a[i*n+k]
				} else {
					lik = 1 // unit diagonal
				}
				if k <= j {
					s += lik * a[k*n+j]
				}
			}
			back[i*n+j] = s
		}
	}
	if d := MaxAbsDiff(orig, back); d > 1e-2 {
		t.Fatalf("L·U differs from A by %g", d)
	}
}

func TestGenSPDIsSymmetric(t *testing.T) {
	n := 20
	a := GenSPD(n, 99)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a[i*n+j] != a[j*n+i] {
				t.Fatalf("GenSPD not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGenMatrixReproducible(t *testing.T) {
	a := GenMatrix(16, 5)
	b := GenMatrix(16, 5)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatalf("GenMatrix not reproducible for equal seeds")
	}
	c := GenMatrix(16, 6)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatalf("GenMatrix identical across different seeds")
	}
}

func TestFlopsFormulas(t *testing.T) {
	if GemmFlops(100) != 2e6 {
		t.Fatalf("GemmFlops(100) = %g", GemmFlops(100))
	}
	if CholeskyFlops(90) <= 0 {
		t.Fatalf("CholeskyFlops must be positive")
	}
	// Strassen at cutoff equals plain GEMM; above cutoff it is cheaper
	// than 8 half-size multiplies.
	if StrassenFlops(64, 64) != GemmFlops(64) {
		t.Fatalf("Strassen at cutoff must equal GEMM flops")
	}
	if !(StrassenFlops(128, 64) < 8*GemmFlops(64)+1e9) {
		t.Fatalf("Strassen flops formula out of range")
	}
}

func TestGemmLinearityProperty(t *testing.T) {
	// Property: GEMM is linear in A — (A1+A2)·B == A1·B + A2·B.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 8
		a1, a2, b := randBlock(m, rng), randBlock(m, rng), randBlock(m, rng)
		sum := make([]float32, m*m)
		Fast.Add(a1, a2, sum, m)
		c1 := make([]float32, m*m)
		Fast.GemmNN(sum, b, c1, m)
		c2 := make([]float32, m*m)
		Fast.GemmNN(a1, b, c2, m)
		Fast.GemmNN(a2, b, c2, m)
		return MaxAbsDiff(c1, c2) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPotrfTrsmConsistency(t *testing.T) {
	// Property: after A = L·Lᵀ, Trsm(L, B) applied to B = X·Lᵀ recovers X.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 12
		a := spdBlock(m, rng)
		if !potrf(a, m) {
			return false
		}
		ZeroUpper(a, m)
		x := randBlock(m, rng)
		// B = X·Lᵀ
		lt := make([]float32, m*m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				lt[i*m+j] = a[j*m+i]
			}
		}
		b := make([]float32, m*m)
		Fast.GemmNN(x, lt, b, m)
		Fast.Trsm(a, b, m)
		return MaxAbsDiff(b, x) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
