package kernels

// Block-vector kernels for the triangular solve that consumes a Cholesky
// factor (paper §VII.D: "a real program may perform a Cholesky
// factorization and use the result in another operation").  Like the
// tile kernels, they come in provider flavors: Ref textbook loops, Fast
// unrolled dot products (shared by Tuned — packing brings an O(m²)
// kernel nothing), and an FMA assembly Gemv on the Simd provider.

// Gemv computes y -= A·x for an m×m row-major block A and length-m
// vectors (the portable implementation, also the Fast provider's).
func Gemv(a, x, y []float32, m int) { gemvFast(a, x, y, m) }

// Trsv solves L·z = b in place of b for the lower triangle of the m×m
// block L (forward substitution).
func Trsv(l, b []float32, m int) { trsvFast(l, b, m) }

// gemvRef: y -= A·x, textbook order.
func gemvRef(a, x, y []float32, m int) {
	for i := 0; i < m; i++ {
		var s float32
		for k := 0; k < m; k++ {
			s += a[i*m+k] * x[k]
		}
		y[i] -= s
	}
}

// gemvFast: y -= A·x with 4-way unrolled dot products over contiguous
// rows of A.
func gemvFast(a, x, y []float32, m int) {
	for i := 0; i < m; i++ {
		ai := a[i*m : i*m+m]
		var s0, s1, s2, s3 float32
		k := 0
		for ; k+3 < m; k += 4 {
			s0 += ai[k] * x[k]
			s1 += ai[k+1] * x[k+1]
			s2 += ai[k+2] * x[k+2]
			s3 += ai[k+3] * x[k+3]
		}
		for ; k < m; k++ {
			s0 += ai[k] * x[k]
		}
		y[i] -= s0 + s1 + s2 + s3
	}
}

// trsvRef: forward substitution, textbook order.
func trsvRef(l, b []float32, m int) {
	for i := 0; i < m; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*m+k] * b[k]
		}
		b[i] = s / l[i*m+i]
	}
}

// trsvFast is trsvRef with the dot product over the contiguous row
// prefix hoisted into a re-sliced range loop.
func trsvFast(l, b []float32, m int) {
	for i := 0; i < m; i++ {
		s := b[i]
		li := l[i*m : i*m+i]
		for k := range li {
			s -= li[k] * b[k]
		}
		b[i] = s / l[i*m+i]
	}
}

// TrsvFlat solves L·z = b in place for a flat n×n lower-triangular L,
// the sequential reference for the blocked solve.
func TrsvFlat(l, b []float32, n int) {
	Trsv(l, b, n)
}
