package kernels

// Block-vector kernels for the triangular solve that consumes a Cholesky
// factor (paper §VII.D: "a real program may perform a Cholesky
// factorization and use the result in another operation").

// Gemv computes y -= A·x for an m×m row-major block A and length-m
// vectors.
func Gemv(a, x, y []float32, m int) {
	for i := 0; i < m; i++ {
		ai := a[i*m : i*m+m]
		var s float32
		for k := 0; k < m; k++ {
			s += ai[k] * x[k]
		}
		y[i] -= s
	}
}

// Trsv solves L·z = b in place of b for the lower triangle of the m×m
// block L (forward substitution).
func Trsv(l, b []float32, m int) {
	for i := 0; i < m; i++ {
		s := b[i]
		li := l[i*m : i*m+i]
		for k := range li {
			s -= li[k] * b[k]
		}
		b[i] = s / l[i*m+i]
	}
}

// TrsvFlat solves L·z = b in place for a flat n×n lower-triangular L,
// the sequential reference for the blocked solve.
func TrsvFlat(l, b []float32, n int) {
	Trsv(l, b, n)
}
