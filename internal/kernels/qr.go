package kernels

import "math"

// Tile kernels for the communication-avoiding tiled QR factorization of
// Buttari, Langou, Kurzak and Dongarra — the paper's reference [10] ("A
// class of parallel tiled linear algebra algorithms for multicore
// architectures"), which names QR alongside Cholesky and LU as the
// factorizations that decompose naturally into tasks (§IV).  The four
// kernels follow the PLASMA naming: GEQRT factors a diagonal tile, UNMQR
// applies its reflectors to the tiles on its right, TSQRT couples the
// triangle with a tile below it, and TSMQR applies that coupling to the
// trailing pairs.
//
// All tiles are m×m row-major []float32.  Reflectors use the compact WY
// representation Q = I − V·T·Vᵀ with V unit-lower and T upper-triangular.

// householder computes the Householder reflection annihilating x below
// its first element: given alpha = x[0] and sq = Σ x[i>0]², it returns
// beta (the new leading value), tau, and the inverse scale applied to the
// tail so that v = [1, x[1:]·invScale] satisfies
// (I − tau·v·vᵀ)·x = [beta, 0...].  A zero tail yields tau = 0 (H = I).
func householder(alpha float32, sq float64) (beta, tau, invScale float32) {
	if sq == 0 {
		return alpha, 0, 0
	}
	b := math.Sqrt(float64(alpha)*float64(alpha) + sq)
	if alpha > 0 {
		b = -b
	}
	beta = float32(b)
	tau = (beta - alpha) / beta
	invScale = 1 / (alpha - beta)
	return beta, tau, invScale
}

// Geqrt computes the QR factorization of tile a in place: R lands in the
// upper triangle, the Householder vectors V (unit lower) below the
// diagonal, and t receives the m×m upper-triangular factor T of the
// compact WY representation Q = I − V·T·Vᵀ.
func Geqrt(a, t []float32, m int) {
	for i := range t[:m*m] {
		t[i] = 0
	}
	z := make([]float32, m)
	for k := 0; k < m; k++ {
		var sq float64
		for i := k + 1; i < m; i++ {
			sq += float64(a[i*m+k]) * float64(a[i*m+k])
		}
		beta, tau, inv := householder(a[k*m+k], sq)
		for i := k + 1; i < m; i++ {
			a[i*m+k] *= inv
		}
		a[k*m+k] = beta

		// Apply H_k = I − tau·v·vᵀ to the trailing columns.
		if tau != 0 {
			for j := k + 1; j < m; j++ {
				w := a[k*m+j]
				for i := k + 1; i < m; i++ {
					w += a[i*m+k] * a[i*m+j]
				}
				w *= tau
				a[k*m+j] -= w
				for i := k + 1; i < m; i++ {
					a[i*m+j] -= a[i*m+k] * w
				}
			}
		}

		// Fold H_k into T: T[0:k,k] = −tau·T[0:k,0:k]·(V[:,0:k]ᵀ·v_k).
		for i := 0; i < k; i++ {
			zi := a[k*m+i]
			for r := k + 1; r < m; r++ {
				zi += a[r*m+i] * a[r*m+k]
			}
			z[i] = zi
		}
		for i := 0; i < k; i++ {
			var s float32
			for j := i; j < k; j++ {
				s += t[i*m+j] * z[j]
			}
			t[i*m+k] = -tau * s
		}
		t[k*m+k] = tau
	}
}

// Unmqr applies Qᵀ from a Geqrt factorization (V stored below the
// diagonal of v, T in t) to the tile c from the left: c := Qᵀ·c.
func Unmqr(v, t, c []float32, m int) {
	w := make([]float32, m*m)
	// W = Vᵀ·C  (V unit-lower).
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			s := c[i*m+j]
			for r := i + 1; r < m; r++ {
				s += v[r*m+i] * c[r*m+j]
			}
			w[i*m+j] = s
		}
	}
	// W = Tᵀ·W  (T upper-triangular, so Tᵀ is lower).
	for j := 0; j < m; j++ {
		for i := m - 1; i >= 0; i-- {
			var s float32
			for q := 0; q <= i; q++ {
				s += t[q*m+i] * w[q*m+j]
			}
			w[i*m+j] = s
		}
	}
	// C −= V·W.
	for r := 0; r < m; r++ {
		for j := 0; j < m; j++ {
			s := w[r*m+j]
			for i := 0; i < r; i++ {
				s += v[r*m+i] * w[i*m+j]
			}
			c[r*m+j] -= s
		}
	}
}

// Tsqrt computes the QR factorization of the stacked 2m×m matrix [R; A]
// where R (in tile r) is upper-triangular: it updates R in place, stores
// the dense Householder block V₂ in tile a, and the T factor in t.  The
// strictly-lower part of r is left untouched (it still holds the V of the
// earlier Geqrt on that tile).
func Tsqrt(r, a, t []float32, m int) {
	for i := range t[:m*m] {
		t[i] = 0
	}
	z := make([]float32, m)
	for k := 0; k < m; k++ {
		var sq float64
		for i := 0; i < m; i++ {
			sq += float64(a[i*m+k]) * float64(a[i*m+k])
		}
		beta, tau, inv := householder(r[k*m+k], sq)
		for i := 0; i < m; i++ {
			a[i*m+k] *= inv
		}
		r[k*m+k] = beta

		// The reflector is v = [e_k; v₂]: in the top block it touches
		// only row k.
		if tau != 0 {
			for j := k + 1; j < m; j++ {
				w := r[k*m+j]
				for i := 0; i < m; i++ {
					w += a[i*m+k] * a[i*m+j]
				}
				w *= tau
				r[k*m+j] -= w
				for i := 0; i < m; i++ {
					a[i*m+j] -= a[i*m+k] * w
				}
			}
		}

		// T[0:k,k] = −tau·T[0:k,0:k]·(V₂[:,0:k]ᵀ·v₂) — the e_i parts are
		// orthogonal, so only the dense halves contribute.
		for i := 0; i < k; i++ {
			var zi float32
			for rr := 0; rr < m; rr++ {
				zi += a[rr*m+i] * a[rr*m+k]
			}
			z[i] = zi
		}
		for i := 0; i < k; i++ {
			var s float32
			for j := i; j < k; j++ {
				s += t[i*m+j] * z[j]
			}
			t[i*m+k] = -tau * s
		}
		t[k*m+k] = tau
	}
}

// Tsmqr applies Qᵀ from a Tsqrt factorization (V₂ in v2, T in t) to the
// stacked pair [C1; C2] from the left.
func Tsmqr(c1, c2, v2, t []float32, m int) {
	w := make([]float32, m*m)
	// W = C1 + V₂ᵀ·C2   (the top half of V is the identity).
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			s := c1[i*m+j]
			for r := 0; r < m; r++ {
				s += v2[r*m+i] * c2[r*m+j]
			}
			w[i*m+j] = s
		}
	}
	// W = Tᵀ·W.
	for j := 0; j < m; j++ {
		for i := m - 1; i >= 0; i-- {
			var s float32
			for q := 0; q <= i; q++ {
				s += t[q*m+i] * w[q*m+j]
			}
			w[i*m+j] = s
		}
	}
	// C1 −= W;  C2 −= V₂·W.
	for i := 0; i < m*m; i++ {
		c1[i] -= w[i]
	}
	for r := 0; r < m; r++ {
		for j := 0; j < m; j++ {
			var s float32
			for i := 0; i < m; i++ {
				s += v2[r*m+i] * w[i*m+j]
			}
			c2[r*m+j] -= s
		}
	}
}

// QRFlops estimates the floating-point operations of a Householder QR of
// an n×n matrix (4/3·n³), used to report Gflop/s for the QR experiment.
func QRFlops(n int) float64 {
	fn := float64(n)
	return 4.0 / 3.0 * fn * fn * fn
}
