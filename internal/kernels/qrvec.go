package kernels

// Vector variants of the QR application kernels, used by the blocked
// QR solver (x = R⁻¹·Qᵀ·b): the same compact-WY updates as Unmqr/Tsmqr
// applied to length-m block vectors instead of m×m tiles, plus the
// upper-triangular back-substitution.

// UnmqrVec applies Qᵀ from a Geqrt factorization to the length-m vector
// c in place.
func UnmqrVec(v, t, c []float32, m int) {
	w := make([]float32, m)
	// w = Vᵀ·c (V unit-lower).
	for i := 0; i < m; i++ {
		s := c[i]
		for r := i + 1; r < m; r++ {
			s += v[r*m+i] * c[r]
		}
		w[i] = s
	}
	// w = Tᵀ·w.
	for i := m - 1; i >= 0; i-- {
		var s float32
		for q := 0; q <= i; q++ {
			s += t[q*m+i] * w[q]
		}
		w[i] = s
	}
	// c −= V·w.
	for r := 0; r < m; r++ {
		s := w[r]
		for i := 0; i < r; i++ {
			s += v[r*m+i] * w[i]
		}
		c[r] -= s
	}
}

// TsmqrVec applies Qᵀ from a Tsqrt factorization to the stacked vector
// pair [c1; c2] in place.
func TsmqrVec(c1, c2, v2, t []float32, m int) {
	w := make([]float32, m)
	// w = c1 + V₂ᵀ·c2.
	for i := 0; i < m; i++ {
		s := c1[i]
		for r := 0; r < m; r++ {
			s += v2[r*m+i] * c2[r]
		}
		w[i] = s
	}
	// w = Tᵀ·w.
	for i := m - 1; i >= 0; i-- {
		var s float32
		for q := 0; q <= i; q++ {
			s += t[q*m+i] * w[q]
		}
		w[i] = s
	}
	// c1 −= w;  c2 −= V₂·w.
	for i := 0; i < m; i++ {
		c1[i] -= w[i]
	}
	for r := 0; r < m; r++ {
		var s float32
		for i := 0; i < m; i++ {
			s += v2[r*m+i] * w[i]
		}
		c2[r] -= s
	}
}

// UTrsv solves U·x = b in place of b for the upper triangle of the m×m
// block U (back substitution).  It ignores the strictly-lower part,
// which after a QR factorization still holds Householder vectors.
func UTrsv(u, b []float32, m int) {
	for i := m - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < m; k++ {
			s -= u[i*m+k] * b[k]
		}
		b[i] = s / u[i*m+i]
	}
}
