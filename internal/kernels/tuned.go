package kernels

// The Tuned provider: the packed engine (engine.go) driven by scalar
// micro-kernels — register tiles the Go compiler keeps in scalar XMM
// registers, for builds and machines without the AVX2/FMA assembly
// family of the Simd provider.
//
// The streaming loops of the Fast provider read ~3 floats from cache
// per multiply-add; the engine instead packs panels so every loaded
// float feeds mr (or nr) multiply-adds (see engine.go).  The tile
// shape is chosen for the Go compiler's scalar code: gc does not
// auto-vectorize, so the shape must fit the 16 scalar registers of
// amd64.  Measured on the PR 3 container, 4×2 (8 accumulators + 6
// operand temporaries, bounds-check-free, k unrolled ×4) reaches ~8.4
// Gflop/s at block 128 where 4×4 (16 accumulators, spilled) manages
// ~4.0 and the Fast axpy loop ~3.7.  The 4×4 and 2×4 shapes stay in
// the family so `smpssbench -tune` re-runs that shootout on the host
// instead of trusting one container's numbers.
//
// Packing costs O(m²) traffic against the O(m³) work it accelerates,
// so below the crossover the engine delegates to the Fast streaming
// loops.  Shape, kc depth and crossover are engine parameters
// (kernels.Params), overridable by a measured machine profile.

// tunedDefaults is the blocking the PR 3 shootout chose, the
// configuration used when no machine profile has been applied.
var tunedDefaults = Params{MR: 4, NR: 2, KC: 256, Crossover: 16}

// scalarKernels is the scalar micro-kernel family.
var scalarKernels = []tileKernel{
	{mr: 4, nr: 2, kern: tile4x2},
	{mr: 4, nr: 4, kern: tile4x4},
	{mr: 2, nr: 4, kern: tile2x4},
}

// tunedEngine drives the scalar family; it doubles as the Simd
// provider's bit-compatible portable fallback.
var tunedEngine = newEngine("tuned", scalarKernels, tunedDefaults)

// Tuned is the packed scalar micro-kernel provider.  Trsm, Potrf, Add,
// Sub, Gemv and Trsv are inherited from the Fast provider: they are
// lower-order or bandwidth-bound sidekicks off the critical kernel
// path, and the engine's packing layout brings them nothing.
var Tuned = engineProvider("tuned", tunedEngine)

// The Scratch methods below keep the pre-parameterization API: a
// per-worker scratch driving the scalar engine directly.

// GemmNN computes C += A·B through the packed scalar engine using this
// scratch's buffers.  The runtime path calls it with the executing
// worker's scratch so packing reuses warm per-worker storage.
func (s *Scratch) GemmNN(a, b, c []float32, m int) { tunedEngine.GemmNNS(s, a, b, c, m) }

// GemmNT computes C -= A·Bᵀ through the packed scalar engine.
func (s *Scratch) GemmNT(a, b, c []float32, m int) { tunedEngine.GemmNTS(s, a, b, c, m) }

// Syrk computes C -= A·Aᵀ on the lower triangle through the packed
// scalar engine, skipping tiles strictly above the diagonal.
func (s *Scratch) Syrk(a, c []float32, m int) { tunedEngine.SyrkS(s, a, c, m) }

// GemmSub computes C -= A·B through the packed scalar engine (the
// trailing update of tiled LU).
func (s *Scratch) GemmSub(a, b, c []float32, m int) { tunedEngine.GemmSubS(s, a, b, c, m) }

// tile4x2 is the scalar engine's primary kernel: a 4×2 accumulator
// tile C[0:4, 0:2] ±= Ap·Bp over kk packed steps, the k loop unrolled
// four times.  Both panels advance by re-slicing under an explicit len
// guard so every load sits at a constant offset the compiler proves in
// bounds — the bounds-check-free form is worth ~1.5× over indexed
// access here.  The k loop is shape-free — padding guarantees full
// panels — so the tile is written back whole.
func tile4x2(ap, bp, c []float32, ldc, kk int, sub bool) {
	const mr, nr = 4, 2
	var c00, c01, c10, c11, c20, c21, c30, c31 float32
	ap = ap[: kk*mr : kk*mr]
	bp = bp[: kk*nr : kk*nr]
	for len(ap) >= 4*mr && len(bp) >= 4*nr {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[8], ap[9], ap[10], ap[11]
		b0, b1 = bp[4], bp[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[12], ap[13], ap[14], ap[15]
		b0, b1 = bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4*mr:]
		bp = bp[4*nr:]
	}
	for len(ap) >= mr && len(bp) >= nr { // kk % 4 tail
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[mr:]
		bp = bp[nr:]
	}
	if sub {
		c00, c01 = -c00, -c01
		c10, c11 = -c10, -c11
		c20, c21 = -c20, -c21
		c30, c31 = -c30, -c31
	}
	c[0] += c00
	c[1] += c01
	c[ldc+0] += c10
	c[ldc+1] += c11
	c[2*ldc+0] += c20
	c[2*ldc+1] += c21
	c[3*ldc+0] += c30
	c[3*ldc+1] += c31
}

// tile4x4 is the 16-accumulator scalar shape: on amd64 it spills past
// the 16 scalar registers and loses to 4×2, but wider machines (or
// future compilers) may disagree — the tuner decides.
func tile4x4(ap, bp, c []float32, ldc, kk int, sub bool) {
	const mr, nr = 4, 4
	var (
		c00, c01, c02, c03 float32
		c10, c11, c12, c13 float32
		c20, c21, c22, c23 float32
		c30, c31, c32, c33 float32
	)
	ap = ap[: kk*mr : kk*mr]
	bp = bp[: kk*nr : kk*nr]
	for len(ap) >= mr && len(bp) >= nr {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		ap = ap[mr:]
		bp = bp[nr:]
	}
	if sub {
		c00, c01, c02, c03 = -c00, -c01, -c02, -c03
		c10, c11, c12, c13 = -c10, -c11, -c12, -c13
		c20, c21, c22, c23 = -c20, -c21, -c22, -c23
		c30, c31, c32, c33 = -c30, -c31, -c32, -c33
	}
	c[0] += c00
	c[1] += c01
	c[2] += c02
	c[3] += c03
	c[ldc+0] += c10
	c[ldc+1] += c11
	c[ldc+2] += c12
	c[ldc+3] += c13
	c[2*ldc+0] += c20
	c[2*ldc+1] += c21
	c[2*ldc+2] += c22
	c[2*ldc+3] += c23
	c[3*ldc+0] += c30
	c[3*ldc+1] += c31
	c[3*ldc+2] += c32
	c[3*ldc+3] += c33
}

// tile2x4 is the transposed 8-accumulator shape — same register budget
// as 4×2 with the wide side on B.
func tile2x4(ap, bp, c []float32, ldc, kk int, sub bool) {
	const mr, nr = 2, 4
	var (
		c00, c01, c02, c03 float32
		c10, c11, c12, c13 float32
	)
	ap = ap[: kk*mr : kk*mr]
	bp = bp[: kk*nr : kk*nr]
	for len(ap) >= 2*mr && len(bp) >= 2*nr {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[2], ap[3]
		b0, b1, b2, b3 = bp[4], bp[5], bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[2*mr:]
		bp = bp[2*nr:]
	}
	for len(ap) >= mr && len(bp) >= nr { // kk % 2 tail
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[mr:]
		bp = bp[nr:]
	}
	if sub {
		c00, c01, c02, c03 = -c00, -c01, -c02, -c03
		c10, c11, c12, c13 = -c10, -c11, -c12, -c13
	}
	c[0] += c00
	c[1] += c01
	c[2] += c02
	c[3] += c03
	c[ldc+0] += c10
	c[ldc+1] += c11
	c[ldc+2] += c12
	c[ldc+3] += c13
}
