package kernels

// The Tuned provider: a packed, register-tiled micro-kernel engine in
// the Goto/BLIS mold, shared by GemmNN, GemmNT and Syrk.
//
// The streaming loops of the Fast provider read ~3 floats from cache
// per multiply-add; the engine instead packs A into mr×kc row panels
// and B into kc×nr column panels laid out in the exact order the inner
// loop consumes them, then drives an mr×nr register-resident
// accumulator tile down the shared k dimension: every loaded float
// feeds mr (or nr) multiply-adds, and the packed panels stream through
// L1 with unit stride regardless of the block's leading dimension.
// Blocks whose k extent exceeds kc are processed in kc-deep chunks so
// the active B panel set stays cache-resident (the "cache blocking"
// loop of the Goto decomposition); edge tiles for m not divisible by
// mr/nr are handled by zero-padding the panels and masking the
// write-back, so the micro-kernel's k loop never branches on shape.
//
// The tile shape is chosen for the Go compiler's scalar code, not for
// a hand-written SIMD kernel: gc does not auto-vectorize, so the
// accumulators live in scalar XMM registers and the shape must fit the
// 16 registers of amd64.  Measured on this container's single core,
// 4×2 (8 accumulators + 6 operand temporaries, bounds-check-free,
// k unrolled ×4) reaches ~8.4 Gflop/s at block 128 where 4×4 (16
// accumulators, spilled) manages ~4.0 and the Fast axpy loop ~3.7.
//
// Packing costs O(m²) traffic against the O(m³) work it accelerates,
// so below packThreshold the engine delegates to the Fast streaming
// loops (the crossover heuristic).

const (
	// mr×nr is the register tile: mr rows of A against nr columns of B,
	// giving mr*nr scalar accumulators the compiler keeps in registers
	// across the k loop.
	mr = 4
	nr = 2
	// kc is the k-chunk depth: one packed B panel set is at most
	// ceil(m/nr)·kc·nr floats and one A panel mr·kc floats.
	kc = 256
	// packThreshold is the crossover block size.  Measured on this
	// container the engine wins from 16×16 up (6.5 vs 4.0 Gflop/s at
	// 32, 5.1 vs 3.4 at 16); below 16 a block is L1-resident, tiles are
	// mostly padding (mr-1 zero rows on a 5-row block) and the pooled
	// arena traffic is pure overhead, so the streaming loops keep the
	// small-block regime.
	packThreshold = 16
)

// Tuned is the packed micro-kernel provider.  Trsm, Potrf, Add and Sub
// are inherited from the Fast provider: they are lower-order or
// bandwidth-bound sidekicks off the critical kernel path, and the
// engine's packing layout brings them nothing.
var Tuned = Provider{
	Name:     "tuned",
	GemmNN:   tunedGemmNN,
	GemmNT:   tunedGemmNT,
	Syrk:     tunedSyrk,
	Trsm:     trsmFast,
	Potrf:    potrf,
	GemmSub:  tunedGemmSub,
	Add:      addFast,
	Sub:      subFast,
	GemmNNS:  (*Scratch).GemmNN,
	GemmNTS:  (*Scratch).GemmNT,
	SyrkS:    (*Scratch).Syrk,
	GemmSubS: (*Scratch).GemmSub,
}

// The plain Provider entry points borrow a pooled scratch per call, so
// Tuned drops into every call site that has no worker identity.

func tunedGemmNN(a, b, c []float32, m int) {
	if m < packThreshold {
		gemmNNFast(a, b, c, m)
		return
	}
	s := AcquireScratch()
	s.gemm(a, b, c, m, false, false)
	ReleaseScratch(s)
}

func tunedGemmNT(a, b, c []float32, m int) {
	if m < packThreshold {
		gemmNTFast(a, b, c, m)
		return
	}
	s := AcquireScratch()
	s.gemm(a, b, c, m, true, true)
	ReleaseScratch(s)
}

func tunedSyrk(a, c []float32, m int) {
	if m < packThreshold {
		syrkFast(a, c, m)
		return
	}
	s := AcquireScratch()
	s.syrk(a, c, m)
	ReleaseScratch(s)
}

func tunedGemmSub(a, b, c []float32, m int) {
	if m < packThreshold {
		GemmSubNN(a, b, c, m)
		return
	}
	s := AcquireScratch()
	s.gemm(a, b, c, m, false, true)
	ReleaseScratch(s)
}

// GemmNN computes C += A·B through the packed engine using this
// scratch's buffers.  The runtime path calls it with the executing
// worker's scratch so packing reuses warm per-worker storage.
func (s *Scratch) GemmNN(a, b, c []float32, m int) {
	if m < packThreshold {
		gemmNNFast(a, b, c, m)
		return
	}
	s.gemm(a, b, c, m, false, false)
}

// GemmNT computes C -= A·Bᵀ through the packed engine.
func (s *Scratch) GemmNT(a, b, c []float32, m int) {
	if m < packThreshold {
		gemmNTFast(a, b, c, m)
		return
	}
	s.gemm(a, b, c, m, true, true)
}

// Syrk computes C -= A·Aᵀ on the lower triangle through the packed
// engine, skipping tiles strictly above the diagonal.
func (s *Scratch) Syrk(a, c []float32, m int) {
	if m < packThreshold {
		syrkFast(a, c, m)
		return
	}
	s.syrk(a, c, m)
}

// GemmSub computes C -= A·B through the packed engine (the trailing
// update of tiled LU).
func (s *Scratch) GemmSub(a, b, c []float32, m int) {
	if m < packThreshold {
		GemmSubNN(a, b, c, m)
		return
	}
	s.gemm(a, b, c, m, false, true)
}

// gemm drives the engine: C ±= A·op(B) with op = Bᵀ when transB.
// sub selects subtraction at write-back (GemmNT's contract).
func (s *Scratch) gemm(a, b, c []float32, m int, transB, sub bool) {
	np := (m + nr - 1) / nr
	kcap := min(kc, m)
	arena := s.ensure(np*kcap*nr + mr*kcap)
	bp := arena[: np*kcap*nr : np*kcap*nr]
	ap := arena[np*kcap*nr:]
	for k0 := 0; k0 < m; k0 += kc {
		kk := min(kc, m-k0)
		if transB {
			packBT(bp, b, m, k0, kk)
		} else {
			packBN(bp, b, m, k0, kk)
		}
		for i0 := 0; i0 < m; i0 += mr {
			rows := min(mr, m-i0)
			packA(ap, a, m, i0, rows, k0, kk)
			for jp := 0; jp < np; jp++ {
				j0 := jp * nr
				microTile(ap, bp[jp*kk*nr:], c[i0*m+j0:], m, kk,
					rows, min(nr, m-j0), sub)
			}
		}
	}
}

// syrk is gemm with B = Aᵀ, visiting only tiles that intersect the
// lower triangle and masking the write-back of diagonal-crossing tiles.
func (s *Scratch) syrk(a, c []float32, m int) {
	np := (m + nr - 1) / nr
	kcap := min(kc, m)
	arena := s.ensure(np*kcap*nr + mr*kcap)
	bp := arena[: np*kcap*nr : np*kcap*nr]
	ap := arena[np*kcap*nr:]
	for k0 := 0; k0 < m; k0 += kc {
		kk := min(kc, m-k0)
		packBT(bp, a, m, k0, kk)
		for i0 := 0; i0 < m; i0 += mr {
			rows := min(mr, m-i0)
			packA(ap, a, m, i0, rows, k0, kk)
			// Only tiles whose first column is on or below the last row.
			for jp := 0; jp*nr <= i0+rows-1 && jp < np; jp++ {
				j0 := jp * nr
				cols := min(nr, m-j0)
				if j0+cols-1 <= i0 {
					// Entirely within the lower triangle.
					microTile(ap, bp[jp*kk*nr:], c[i0*m+j0:], m, kk,
						rows, cols, true)
				} else {
					microTileLower(ap, bp[jp*kk*nr:], c[i0*m+j0:], m, kk,
						rows, cols, i0-j0)
				}
			}
		}
	}
}

// packA packs rows i0..i0+rows-1 of the k-chunk a[·][k0:k0+kk] as one
// mr×kk panel: ap[k*mr+r] = a[(i0+r)*lda + k0+k], rows past the edge
// zero-filled so the micro-kernel always consumes a full panel.
func packA(ap, a []float32, lda, i0, rows, k0, kk int) {
	ap = ap[: kk*mr : kk*mr]
	for r := 0; r < rows; r++ {
		src := a[(i0+r)*lda+k0 : (i0+r)*lda+k0+kk]
		for k, v := range src {
			ap[k*mr+r] = v
		}
	}
	for r := rows; r < mr; r++ {
		for k := 0; k < kk; k++ {
			ap[k*mr+r] = 0
		}
	}
}

// packBN packs the k-chunk of B into column panels of nr:
// bp[jp*kk*nr + k*nr + c] = b[(k0+k)*ldb + jp*nr+c], edge columns
// zero-filled.
func packBN(bp, b []float32, ldb, k0, kk int) {
	np := (ldb + nr - 1) / nr
	for jp := 0; jp < np; jp++ {
		j0 := jp * nr
		cols := min(nr, ldb-j0)
		dst := bp[jp*kk*nr : (jp+1)*kk*nr : (jp+1)*kk*nr]
		if cols == nr {
			for k := 0; k < kk; k++ {
				src := b[(k0+k)*ldb+j0:]
				dst[k*nr] = src[0]
				dst[k*nr+1] = src[1]
			}
		} else {
			for k := 0; k < kk; k++ {
				dst[k*nr] = b[(k0+k)*ldb+j0]
				dst[k*nr+1] = 0
			}
		}
	}
}

// packBT packs the k-chunk of Bᵀ into column panels of nr — column j of
// op(B) is row j of B, so each packed lane streams one contiguous row:
// bp[jp*kk*nr + k*nr + c] = b[(jp*nr+c)*ldb + k0+k].
func packBT(bp, b []float32, ldb, k0, kk int) {
	np := (ldb + nr - 1) / nr
	for jp := 0; jp < np; jp++ {
		j0 := jp * nr
		cols := min(nr, ldb-j0)
		dst := bp[jp*kk*nr : (jp+1)*kk*nr : (jp+1)*kk*nr]
		for c := 0; c < cols; c++ {
			src := b[(j0+c)*ldb+k0 : (j0+c)*ldb+k0+kk]
			for k, v := range src {
				dst[k*nr+c] = v
			}
		}
		for c := cols; c < nr; c++ {
			for k := 0; k < kk; k++ {
				dst[k*nr+c] = 0
			}
		}
	}
}

// microTile is the engine's inner kernel: a 4×2 accumulator tile
// C[0:rows, 0:cols] ±= Ap·Bp over kk packed steps, the k loop unrolled
// four times.  Both panels advance by re-slicing under an explicit len
// guard so every load sits at a constant offset the compiler proves in
// bounds — the bounds-check-free form is worth ~1.5× over indexed
// access here.  The k loop is shape-free — padding guarantees full
// panels — and rows/cols only mask the write-back of edge tiles.
func microTile(ap, bp, c []float32, ldc, kk, rows, cols int, sub bool) {
	var c00, c01, c10, c11, c20, c21, c30, c31 float32
	ap = ap[: kk*mr : kk*mr]
	bp = bp[: kk*nr : kk*nr]
	for len(ap) >= 4*mr && len(bp) >= 4*nr {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[4], ap[5], ap[6], ap[7]
		b0, b1 = bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[8], ap[9], ap[10], ap[11]
		b0, b1 = bp[4], bp[5]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		a0, a1, a2, a3 = ap[12], ap[13], ap[14], ap[15]
		b0, b1 = bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[4*mr:]
		bp = bp[4*nr:]
	}
	for len(ap) >= mr && len(bp) >= nr { // kk % 4 tail
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[mr:]
		bp = bp[nr:]
	}
	if sub {
		c00, c01 = -c00, -c01
		c10, c11 = -c10, -c11
		c20, c21 = -c20, -c21
		c30, c31 = -c30, -c31
	}
	if rows == mr && cols == nr {
		c[0] += c00
		c[1] += c01
		c[ldc+0] += c10
		c[ldc+1] += c11
		c[2*ldc+0] += c20
		c[2*ldc+1] += c21
		c[3*ldc+0] += c30
		c[3*ldc+1] += c31
		return
	}
	acc := [mr * nr]float32{c00, c01, c10, c11, c20, c21, c30, c31}
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			c[r*ldc+j] += acc[r*nr+j]
		}
	}
}

// microTileLower is microTile for a diagonal-crossing Syrk tile: it
// subtracts the accumulators only at positions on or below the block
// diagonal (global row i0+r ≥ global column j0+j, i.e. r+diag ≥ j with
// diag = i0-j0).
func microTileLower(ap, bp, c []float32, ldc, kk, rows, cols, diag int) {
	var c00, c01, c10, c11, c20, c21, c30, c31 float32
	ap = ap[: kk*mr : kk*mr]
	bp = bp[: kk*nr : kk*nr]
	for len(ap) >= mr && len(bp) >= nr {
		a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
		b0, b1 := bp[0], bp[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c10 += a1 * b0
		c11 += a1 * b1
		c20 += a2 * b0
		c21 += a2 * b1
		c30 += a3 * b0
		c31 += a3 * b1
		ap = ap[mr:]
		bp = bp[nr:]
	}
	acc := [mr * nr]float32{c00, c01, c10, c11, c20, c21, c30, c31}
	for r := 0; r < rows; r++ {
		jmax := r + diag
		if jmax >= cols {
			jmax = cols - 1
		}
		for j := 0; j <= jmax; j++ {
			c[r*ldc+j] -= acc[r*nr+j]
		}
	}
}
