// Package kernels provides the single-precision tile kernels that play
// the role of the non-threaded Goto BLAS 1.20 and Intel MKL 9.1 libraries
// the paper uses as task bodies (§VI: "we have implemented the tasks
// using highly tuned BLAS libraries").
//
// Blocks are dense M×M row-major []float32 slices.  Four providers are
// offered so every "SMPSs + Goto tiles" vs "SMPSs + MKL tiles" series
// pair in the paper's figures has an analogue, plus genuinely tuned
// libraries in the role the paper's "highly tuned BLAS" actually played:
//
//   - Simd: the packed engine driven by AVX2/FMA assembly micro-kernels
//     (simd.go), selected by CPUID feature detection at init, with the
//     scalar engine as bit-compatible fallback on machines or builds
//     (`noasm` tag) without them.
//   - Tuned: the packed, register-tiled micro-kernel engine (engine.go,
//     tuned.go) — panel packing, an mr×nr register accumulator tile,
//     cache-depth k-chunking, and a crossover to streaming loops on
//     small blocks, all tunable via a measured machine profile
//     (profile.go, `smpssbench -tune`).
//   - Fast: register-blocked, vectorization-friendly loop orders (the
//     stand-in for Goto BLAS).
//   - Ref: straightforward textbook loops (the stand-in for MKL 9.1 in
//     the relative sense that it is the second, somewhat slower
//     provider).
//
// The package also contains flat-matrix sequential algorithms (GEMM,
// Cholesky, LU) used for verification and as sequential baselines.
package kernels

import "math"

// Provider is one implementation of the tile-kernel set.  All kernels
// operate on M×M row-major blocks.
type Provider struct {
	// Name labels benchmark series ("tuned" / "goto" / "mkl").
	Name string
	// GemmNN computes C += A·B.
	GemmNN func(a, b, c []float32, m int)
	// GemmNT computes C -= A·Bᵀ (the trailing update of Cholesky).
	GemmNT func(a, b, c []float32, m int)
	// Syrk computes C -= A·Aᵀ on the lower triangle of C.
	Syrk func(a, c []float32, m int)
	// Trsm solves X·Lᵀ = B in place of B, with L lower-triangular.
	Trsm func(l, b []float32, m int)
	// Potrf factors the lower triangle of A in place (A = L·Lᵀ),
	// returning false if A is not positive definite.
	Potrf func(a []float32, m int) bool
	// GemmSub computes C -= A·B (the trailing update of tiled LU).
	GemmSub func(a, b, c []float32, m int)
	// Add computes C = A + B; Sub computes C = A - B (Strassen).
	Add func(a, b, c []float32, m int)
	Sub func(a, b, c []float32, m int)
	// Gemv computes y -= A·x and Trsv solves L·z = b in place of b
	// (forward substitution) — the block-vector kernels of the
	// post-Cholesky solve path (§VII.D), routed through the provider so
	// kernel work reaches them too.
	Gemv func(a, x, y []float32, m int)
	Trsv func(l, b []float32, m int)

	// GemmNNS, GemmNTS, SyrkS and GemmSubS are scratch-aware variants,
	// non-nil only for providers that pack (Tuned).  The runtime path
	// calls them with a per-worker Scratch (keyed off core's
	// Args.Worker()) so packing buffers are reused without
	// synchronization; the plain entry points above borrow from the
	// shared scratch pool instead.
	GemmNNS  func(s *Scratch, a, b, c []float32, m int)
	GemmNTS  func(s *Scratch, a, b, c []float32, m int)
	SyrkS    func(s *Scratch, a, c []float32, m int)
	GemmSubS func(s *Scratch, a, b, c []float32, m int)
}

// Fast is the loop-tuned provider (the "Goto BLAS" stand-in).
var Fast = Provider{
	Name:    "goto",
	GemmNN:  gemmNNFast,
	GemmNT:  gemmNTFast,
	Syrk:    syrkFast,
	Trsm:    trsmFast,
	Potrf:   potrf,
	GemmSub: GemmSubNN,
	Add:     addFast,
	Sub:     subFast,
	Gemv:    gemvFast,
	Trsv:    trsvFast,
}

// Ref is the straightforward provider (the "MKL" stand-in).
var Ref = Provider{
	Name:    "mkl",
	GemmNN:  gemmNNRef,
	GemmNT:  gemmNTRef,
	Syrk:    syrkRef,
	Trsm:    trsmRef,
	Potrf:   potrf,
	GemmSub: gemmSubRef,
	Add:     addRef,
	Sub:     subRef,
	Gemv:    gemvRef,
	Trsv:    trsvRef,
}

// Providers lists the kernel providers in plot order: the SIMD engine,
// the scalar engine, then the paper's goto/mkl stand-in pair.
var Providers = []Provider{Simd, Tuned, Fast, Ref}

// ByName returns the provider with the given name, defaulting to Tuned.
func ByName(name string) Provider {
	for _, p := range Providers {
		if p.Name == name {
			return p
		}
	}
	return Tuned
}

// Names returns the provider names in plot order, for flag validation
// and usage strings.
func Names() []string {
	names := make([]string, len(Providers))
	for i, p := range Providers {
		names[i] = p.Name
	}
	return names
}

// gemmNNRef: C += A·B, textbook i-j-k order (strided B access).
func gemmNNRef(a, b, c []float32, m int) {
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var s float32
			for k := 0; k < m; k++ {
				s += a[i*m+k] * b[k*m+j]
			}
			c[i*m+j] += s
		}
	}
}

// gemmNNFast: C += A·B in i-k-j order: the inner loop streams rows of B
// and C with unit stride.  Deliberately no zero-skip on aik: dense
// inputs pay a mispredicted branch per trip to optimize a case only
// contrived inputs hit (structurally sparse matrices go through
// hypermatrix block sparsity instead, which skips whole absent blocks).
func gemmNNFast(a, b, c []float32, m int) {
	for i := 0; i < m; i++ {
		ci := c[i*m : i*m+m]
		for k := 0; k < m; k++ {
			aik := a[i*m+k]
			bk := b[k*m : k*m+m]
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// gemmSubRef: C -= A·B, textbook i-j-k order.
func gemmSubRef(a, b, c []float32, m int) {
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var s float32
			for k := 0; k < m; k++ {
				s += a[i*m+k] * b[k*m+j]
			}
			c[i*m+j] -= s
		}
	}
}

// gemmNTRef: C -= A·Bᵀ, textbook order.
func gemmNTRef(a, b, c []float32, m int) {
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var s float32
			for k := 0; k < m; k++ {
				s += a[i*m+k] * b[j*m+k]
			}
			c[i*m+j] -= s
		}
	}
}

// gemmNTFast: C -= A·Bᵀ with 4-way unrolled dot products over contiguous
// rows of A and B.
func gemmNTFast(a, b, c []float32, m int) {
	for i := 0; i < m; i++ {
		ai := a[i*m : i*m+m]
		for j := 0; j < m; j++ {
			bj := b[j*m : j*m+m]
			var s0, s1, s2, s3 float32
			k := 0
			for ; k+3 < m; k += 4 {
				s0 += ai[k] * bj[k]
				s1 += ai[k+1] * bj[k+1]
				s2 += ai[k+2] * bj[k+2]
				s3 += ai[k+3] * bj[k+3]
			}
			for ; k < m; k++ {
				s0 += ai[k] * bj[k]
			}
			c[i*m+j] -= s0 + s1 + s2 + s3
		}
	}
}

// syrkRef: C -= A·Aᵀ on the lower triangle, textbook order.
func syrkRef(a, c []float32, m int) {
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			var s float32
			for k := 0; k < m; k++ {
				s += a[i*m+k] * a[j*m+k]
			}
			c[i*m+j] -= s
		}
	}
}

// syrkFast: C -= A·Aᵀ on the lower triangle, unrolled dot products.
func syrkFast(a, c []float32, m int) {
	for i := 0; i < m; i++ {
		ai := a[i*m : i*m+m]
		for j := 0; j <= i; j++ {
			aj := a[j*m : j*m+m]
			var s0, s1 float32
			k := 0
			for ; k+1 < m; k += 2 {
				s0 += ai[k] * aj[k]
				s1 += ai[k+1] * aj[k+1]
			}
			for ; k < m; k++ {
				s0 += ai[k] * aj[k]
			}
			c[i*m+j] -= s0 + s1
		}
	}
}

// trsmRef solves X·Lᵀ = B in place of B (right side, lower, transposed):
// row r of X satisfies x[r][c] = (b[r][c] - Σ_{k<c} x[r][k]·l[c][k]) / l[c][c].
func trsmRef(l, b []float32, m int) {
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			s := b[r*m+c]
			for k := 0; k < c; k++ {
				s -= b[r*m+k] * l[c*m+k]
			}
			b[r*m+c] = s / l[c*m+c]
		}
	}
}

// trsmFast is trsmRef with the dot product over the contiguous row
// prefixes unrolled.
func trsmFast(l, b []float32, m int) {
	for r := 0; r < m; r++ {
		br := b[r*m : r*m+m]
		for c := 0; c < m; c++ {
			lc := l[c*m : c*m+c]
			var s0, s1 float32
			k := 0
			for ; k+1 < c; k += 2 {
				s0 += br[k] * lc[k]
				s1 += br[k+1] * lc[k+1]
			}
			for ; k < c; k++ {
				s0 += br[k] * lc[k]
			}
			br[c] = (br[c] - s0 - s1) / l[c*m+c]
		}
	}
}

// potrf factors the lower triangle of A in place: A = L·Lᵀ.  It returns
// false if a non-positive pivot appears (A not positive definite).
func potrf(a []float32, m int) bool {
	for k := 0; k < m; k++ {
		d := a[k*m+k]
		if d <= 0 || math.IsNaN(float64(d)) {
			return false
		}
		d = float32(math.Sqrt(float64(d)))
		a[k*m+k] = d
		inv := 1 / d
		for i := k + 1; i < m; i++ {
			a[i*m+k] *= inv
		}
		for j := k + 1; j < m; j++ {
			ajk := a[j*m+k]
			if ajk == 0 {
				continue
			}
			for i := j; i < m; i++ {
				a[i*m+j] -= a[i*m+k] * ajk
			}
		}
	}
	return true
}

func addRef(a, b, c []float32, m int) {
	for i := 0; i < m*m; i++ {
		c[i] = a[i] + b[i]
	}
}

func addFast(a, b, c []float32, m int) {
	n := m * m
	a, b, c = a[:n], b[:n], c[:n:n]
	for i := range c {
		c[i] = a[i] + b[i]
	}
}

func subRef(a, b, c []float32, m int) {
	for i := 0; i < m*m; i++ {
		c[i] = a[i] - b[i]
	}
}

func subFast(a, b, c []float32, m int) {
	n := m * m
	a, b, c = a[:n], b[:n], c[:n:n]
	for i := range c {
		c[i] = a[i] - b[i]
	}
}
