//go:build amd64 && !noasm

package kernels

// amd64 side of the Simd provider: feature detection and the Go
// declarations of the assembly kernels (gemm_amd64.s, cpu_amd64.s).

// fmaTile6x16 accumulates the full 6×16 register tile
// c[0:6, 0:16] ±= Ap·Bp over kk packed steps (see tileFunc's panel
// layout), writing back add (sub=0) or subtract (sub=1).
//
//go:noescape
func fmaTile6x16(ap, bp, c *float32, ldc, kk, sub uintptr)

// fmaTile8x8 is the 8×8 tile variant (one ymm accumulator per row).
//
//go:noescape
func fmaTile8x8(ap, bp, c *float32, ldc, kk, sub uintptr)

// fmaDot returns the dot product of two length-n float32 vectors using
// 4 ymm FMA accumulators (32 floats in flight) with 8-wide and scalar
// tails.
//
//go:noescape
func fmaDot(a, x *float32, n uintptr) float32

// cpuidAsm executes CPUID for the given leaf/subleaf.
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (requires OSXSAVE, checked before calling).
func xgetbvAsm() (eax, edx uint32)

// detectAVX2FMA reports whether this CPU and OS support the assembly
// kernels: FMA + AVX + OSXSAVE with OS-enabled xmm/ymm state, and AVX2.
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	_, _, ecx1, _ := cpuidAsm(1, 0)
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	const xmmYmmState = 0x6
	if eax, _ := xgetbvAsm(); eax&xmmYmmState != xmmYmmState {
		return false
	}
	const avx2 = 1 << 5
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&avx2 != 0
}

// asmTile6x16 and asmTile8x8 adapt the assembly kernels to tileFunc.

func asmTile6x16(ap, bp, c []float32, ldc, kk int, sub bool) {
	s := uintptr(0)
	if sub {
		s = 1
	}
	fmaTile6x16(&ap[0], &bp[0], &c[0], uintptr(ldc), uintptr(kk), s)
}

func asmTile8x8(ap, bp, c []float32, ldc, kk int, sub bool) {
	s := uintptr(0)
	if sub {
		s = 1
	}
	fmaTile8x8(&ap[0], &bp[0], &c[0], uintptr(ldc), uintptr(kk), s)
}

// asmGemv computes y -= A·x with one FMA dot product per row.
func asmGemv(a, x, y []float32, m int) {
	if m == 0 {
		return
	}
	for i := 0; i < m; i++ {
		y[i] -= fmaDot(&a[i*m], &x[0], uintptr(m))
	}
}

// archSimdKernels returns the assembly micro-kernel family and Gemv
// when the CPU supports them, or (nil, nil, false) for the fallback.
func archSimdKernels() ([]tileKernel, func(a, x, y []float32, m int), bool) {
	if !detectAVX2FMA() {
		return nil, nil, false
	}
	return []tileKernel{
		{mr: 6, nr: 16, kern: asmTile6x16},
		{mr: 8, nr: 8, kern: asmTile8x8},
	}, asmGemv, true
}
