package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

func vecNorm(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// TestUnmqrVecMatchesTile: applying Qᵀ to a vector must equal applying
// it to a tile whose first column is that vector.
func TestUnmqrVecMatchesTile(t *testing.T) {
	const m = 12
	a := randTile(m, 61)
	tt := make([]float32, m*m)
	Geqrt(a, tt, m)

	vec := make([]float32, m)
	tile := make([]float32, m*m)
	for i := 0; i < m; i++ {
		vec[i] = float32(i%5) - 2
		tile[i*m] = vec[i]
	}
	UnmqrVec(a, tt, vec, m)
	Unmqr(a, tt, tile, m)
	for i := 0; i < m; i++ {
		if vec[i] != tile[i*m] {
			t.Fatalf("row %d: vector %g vs tile column %g", i, vec[i], tile[i*m])
		}
	}
}

// TestTsmqrVecMatchesTile: same agreement for the stacked-pair kernel.
func TestTsmqrVecMatchesTile(t *testing.T) {
	const m = 10
	r := randTile(m, 62)
	tt := make([]float32, m*m)
	Geqrt(r, tt, m)
	v2 := randTile(m, 63)
	t2 := make([]float32, m*m)
	Tsqrt(r, v2, t2, m)

	vec1 := make([]float32, m)
	vec2 := make([]float32, m)
	tile1 := make([]float32, m*m)
	tile2 := make([]float32, m*m)
	for i := 0; i < m; i++ {
		vec1[i] = float32(i) - 4
		vec2[i] = float32(i%3) + 1
		tile1[i*m] = vec1[i]
		tile2[i*m] = vec2[i]
	}
	TsmqrVec(vec1, vec2, v2, t2, m)
	Tsmqr(tile1, tile2, v2, t2, m)
	for i := 0; i < m; i++ {
		if vec1[i] != tile1[i*m] || vec2[i] != tile2[i*m] {
			t.Fatalf("row %d: vectors (%g,%g) vs tile columns (%g,%g)",
				i, vec1[i], vec2[i], tile1[i*m], tile2[i*m])
		}
	}
}

// TestUnmqrVecNormQuick: Qᵀ preserves vector norms (property-based).
func TestUnmqrVecNormQuick(t *testing.T) {
	const m = 8
	a := randTile(m, 64)
	tt := make([]float32, m*m)
	Geqrt(a, tt, m)
	property := func(seed int64) bool {
		vec := make([]float32, m)
		copy(vec, randTile(m, seed)[:m])
		before := vecNorm(vec)
		UnmqrVec(a, tt, vec, m)
		return math.Abs(vecNorm(vec)-before) <= 1e-4*(1+before)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestUTrsvSolves: with b = U·x, UTrsv recovers x and ignores the
// strictly-lower junk under the triangle.
func TestUTrsvSolves(t *testing.T) {
	const m = 16
	u := randUpper(m, 65)
	// Garbage below the diagonal must be ignored (QR keeps V there).
	junk := randTile(m, 66)
	for i := 0; i < m; i++ {
		for j := 0; j < i; j++ {
			u[i*m+j] = junk[i*m+j]
		}
	}
	x := make([]float32, m)
	for i := range x {
		x[i] = float32(i%4) - 1.5
	}
	b := make([]float32, m)
	for i := 0; i < m; i++ {
		var s float32
		for j := i; j < m; j++ {
			s += u[i*m+j] * x[j]
		}
		b[i] = s
	}
	UTrsv(u, b, m)
	for i := range x {
		if d := math.Abs(float64(b[i] - x[i])); d > 1e-4 {
			t.Fatalf("x[%d] = %g, want %g", i, b[i], x[i])
		}
	}
}
