package kernels

import (
	"math"
	"math/rand"
)

// This file holds flat-matrix sequential algorithms used for verification
// and as the sequential baselines of the paper's experiments, plus the
// workload generators.

// GemmFlat computes C += A·B on flat n×n row-major matrices using the
// fast loop order (one core, no tasking).
func GemmFlat(a, b, c []float32, n int) {
	gemmNNFast(a, b, c, n)
}

// CholeskyFlat factors the lower triangle of the flat n×n matrix A in
// place (A = L·Lᵀ), returning false if A is not positive definite.
func CholeskyFlat(a []float32, n int) bool {
	return potrf(a, n)
}

// LUFlat performs an in-place LU decomposition without pivoting on the
// flat n×n matrix A (L unit-lower, U upper).  It returns false on a zero
// pivot.  The paper cites LU without pivoting as a classic blockable
// algorithm (§IV) and LU with pivoting as the motivation for array
// regions (§V).
func LUFlat(a []float32, n int) bool {
	for k := 0; k < n; k++ {
		p := a[k*n+k]
		if p == 0 || math.IsNaN(float64(p)) {
			return false
		}
		inv := 1 / p
		for i := k + 1; i < n; i++ {
			a[i*n+k] *= inv
		}
		for i := k + 1; i < n; i++ {
			lik := a[i*n+k]
			if lik == 0 {
				continue
			}
			rowK := a[k*n+k+1 : k*n+n]
			rowI := a[i*n+k+1 : i*n+n]
			for j := range rowI {
				rowI[j] -= lik * rowK[j]
			}
		}
	}
	return true
}

// ZeroUpper clears the strict upper triangle of the flat n×n matrix A,
// leaving the lower-triangular factor produced by CholeskyFlat.
func ZeroUpper(a []float32, n int) {
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a[i*n+j] = 0
		}
	}
}

// MulLLT computes C = L·Lᵀ for a lower-triangular flat n×n L, used to
// verify Cholesky factors.
func MulLLT(l []float32, n int) []float32 {
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float32
			kmax := j
			for k := 0; k <= kmax; k++ {
				s += l[i*n+k] * l[j*n+k]
			}
			c[i*n+j] = s
			c[j*n+i] = s
		}
	}
	return c
}

// GenMatrix fills an n×n flat matrix with reproducible pseudo-random
// values in [-1, 1).
func GenMatrix(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float32, n*n)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
	}
	return a
}

// GenSPD generates a reproducible symmetric positive-definite n×n flat
// matrix: B·Bᵀ/n + I with random B, the standard way to build Cholesky
// inputs.
func GenSPD(n int, seed int64) []float32 {
	b := GenMatrix(n, seed)
	a := make([]float32, n*n)
	inv := 1 / float32(n)
	for i := 0; i < n; i++ {
		bi := b[i*n : i*n+n]
		for j := 0; j <= i; j++ {
			bj := b[j*n : j*n+n]
			var s float32
			for k := 0; k < n; k++ {
				s += bi[k] * bj[k]
			}
			s *= inv
			if i == j {
				s += 1
			}
			a[i*n+j] = s
			a[j*n+i] = s
		}
	}
	return a
}

// MaxAbsDiff returns the largest absolute element difference between two
// equal-length slices.
func MaxAbsDiff(a, b []float32) float64 {
	var worst float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// LowerMaxAbsDiff compares only the lower triangles of two flat n×n
// matrices, since Cholesky kernels leave the upper triangle unspecified.
func LowerMaxAbsDiff(a, b []float32, n int) float64 {
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := math.Abs(float64(a[i*n+j]) - float64(b[i*n+j]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// CholeskyFlops returns the floating-point operation count n³/3 + O(n²)
// conventionally charged for an n×n Cholesky factorization.
func CholeskyFlops(n int) float64 {
	fn := float64(n)
	return fn * fn * fn / 3
}

// GemmFlops returns the 2n³ operation count of an n×n matrix multiply.
func GemmFlops(n int) float64 {
	fn := float64(n)
	return 2 * fn * fn * fn
}

// LUFlops returns the 2n³/3 + O(n²) operation count conventionally
// charged for an n×n LU factorization.
func LUFlops(n int) float64 {
	fn := float64(n)
	return 2 * fn * fn * fn / 3
}

// StrassenFlops returns the operation count credited to Strassen's
// algorithm on an n×n multiply with recursion cutoff at block size m:
// each of the log2(n/m) levels multiplies 7 subproblems, so the credited
// work is 7^L · 2m³ plus the 18 block additions per level (the paper
// computes Gflop/s "using Strassen's formula from [15]").
func StrassenFlops(n, m int) float64 {
	if n <= m {
		return GemmFlops(n)
	}
	half := float64(n) / 2
	return 7*StrassenFlops(n/2, m) + 18*half*half
}
