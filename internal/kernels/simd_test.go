package kernels

// Equivalence, dispatch and vector-kernel tests for the Simd provider.
// The tile tests mirror tuned_test.go but sweep sizes that also cross
// the assembly shapes (6×16, 8×8): tile multiples, every misalignment
// class, and sizes above one kc chunk.  The forced-fallback test pins
// the dispatch contract: with the assembly family masked, Simd must be
// bit-identical to Tuned, not merely close.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// simdSizes extends the scalar boundary sizes with assembly-tile
// crossers: multiples and misalignments of 6, 8 and 16.
var simdSizes = append([]int{6, 7, 12, 17, 18, 24, 30, 48, 97, 130}, tunedSizes...)

func randVec(m int, rng *rand.Rand) []float32 {
	v := make([]float32, m)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

func TestSimdGemmNNMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range simdSizes {
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmNN(a, b, c1, m)
		Simd.GemmNN(a, b, c2, m)
		if d := MaxAbsDiff(c1, c2); d > tolFor(m) {
			t.Fatalf("m=%d: Simd GemmNN differs from Ref by %g", m, d)
		}
	}
}

func TestSimdGemmNTMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, m := range simdSizes {
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmNT(a, b, c1, m)
		Simd.GemmNT(a, b, c2, m)
		if d := MaxAbsDiff(c1, c2); d > tolFor(m) {
			t.Fatalf("m=%d: Simd GemmNT differs from Ref by %g", m, d)
		}
	}
}

func TestSimdGemmSubMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, m := range simdSizes {
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmSub(a, b, c1, m)
		Simd.GemmSub(a, b, c2, m)
		if d := MaxAbsDiff(c1, c2); d > tolFor(m) {
			t.Fatalf("m=%d: Simd GemmSub differs from Ref by %g", m, d)
		}
	}
}

// TestSimdSyrkMatchesRef also asserts the strict upper triangle is
// untouched — the diagonal-crossing tiles of the 6×16 shape make this
// the sharpest masking test in the suite.
func TestSimdSyrkMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, m := range simdSizes {
		a := randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.Syrk(a, c1, m)
		Simd.Syrk(a, c2, m)
		if d := LowerMaxAbsDiff(c1, c2, m); d > tolFor(m) {
			t.Fatalf("m=%d: Simd Syrk lower triangle differs from Ref by %g", m, d)
		}
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if c2[i*m+j] != c1[i*m+j] {
					t.Fatalf("m=%d: Simd Syrk wrote above the diagonal at (%d,%d)", m, i, j)
				}
			}
		}
	}
}

// TestSimdQuickProperty fuzzes random sizes against the reference on
// all four engine kernels.
func TestSimdQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(140)
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmNN(a, b, c1, m)
		Simd.GemmNN(a, b, c2, m)
		if MaxAbsDiff(c1, c2) > tolFor(m) {
			return false
		}
		Ref.GemmNT(a, b, c1, m)
		Simd.GemmNT(a, b, c2, m)
		if MaxAbsDiff(c1, c2) > tolFor(m) {
			return false
		}
		Ref.GemmSub(a, b, c1, m)
		Simd.GemmSub(a, b, c2, m)
		if MaxAbsDiff(c1, c2) > tolFor(m) {
			return false
		}
		Ref.Syrk(a, c1, m)
		Simd.Syrk(a, c2, m)
		return LowerMaxAbsDiff(c1, c2, m) <= tolFor(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSimdForcedFallbackBitwiseTuned masks the assembly family through
// the dispatch hook and asserts Simd becomes bit-identical to Tuned —
// the same guarantee a noasm build, a non-AVX2 machine or SMPSS_NOSIMD
// gets, checked without needing that hardware.
func TestSimdForcedFallbackBitwiseTuned(t *testing.T) {
	wasOn := SimdActive()
	simdForce(false)
	defer simdForce(wasOn)
	if SimdActive() {
		t.Fatal("SimdActive() true after forced fallback")
	}
	// Align blocking so the engines run identical schedules.
	tp, _ := EngineParams("tuned")
	if err := ConfigureEngine("simd", tp); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	for _, m := range []int{5, 16, 64, 97, 129} {
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Tuned.GemmNN(a, b, c1, m)
		Simd.GemmNN(a, b, c2, m)
		if MaxAbsDiff(c1, c2) != 0 {
			t.Fatalf("m=%d: fallback Simd GemmNN is not bit-identical to Tuned", m)
		}
		Tuned.Syrk(a, c1, m)
		Simd.Syrk(a, c2, m)
		if MaxAbsDiff(c1, c2) != 0 {
			t.Fatalf("m=%d: fallback Simd Syrk is not bit-identical to Tuned", m)
		}
		y1, y2 := randVec(m, rng), []float32(nil)
		y2 = append(y2, y1...)
		x := randVec(m, rng)
		Tuned.Gemv(a, x, y1, m)
		Simd.Gemv(a, x, y2, m)
		if MaxAbsDiff(y1, y2) != 0 {
			t.Fatalf("m=%d: fallback Simd Gemv is not bit-identical to Tuned", m)
		}
	}
}

// TestSimdDispatchReportsState pins the reporting API around the force
// hook: restoring the assembly family only succeeds where it exists.
func TestSimdDispatchReportsState(t *testing.T) {
	wasOn := SimdActive()
	defer simdForce(wasOn)
	if simdForce(true) != SimdAvailable() {
		t.Fatal("simdForce(true) disagrees with SimdAvailable()")
	}
	if SimdActive() != SimdAvailable() {
		t.Fatal("SimdActive() disagrees with SimdAvailable() after simdForce(true)")
	}
	p, ok := EngineParams("simd")
	if !ok {
		t.Fatal("simd has no engine params")
	}
	if SimdActive() && (p.MR*p.NR < 32) {
		t.Fatalf("assembly family active but engine blocked at scalar shape %dx%d", p.MR, p.NR)
	}
}

// TestProviderVectorKernels checks every provider's Gemv/Trsv against
// the textbook loops — the solver routes through these fields now, so
// a nil or wrong entry would break SolveLower/QRSolve.
func TestProviderVectorKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, p := range Providers {
		if p.Gemv == nil || p.Trsv == nil {
			t.Fatalf("provider %s: nil Gemv/Trsv", p.Name)
		}
		for _, m := range []int{1, 2, 7, 16, 33, 64, 127, 256} {
			a := randBlock(m, rng)
			x := randVec(m, rng)
			y1 := randVec(m, rng)
			y2 := append([]float32(nil), y1...)
			gemvRef(a, x, y1, m)
			p.Gemv(a, x, y2, m)
			if d := MaxAbsDiff(y1, y2); d > tolFor(m) {
				t.Fatalf("%s Gemv m=%d: differs from ref by %g", p.Name, m, d)
			}
			// Well-conditioned lower triangle: unit-ish diagonal.
			l := randBlock(m, rng)
			for i := 0; i < m; i++ {
				l[i*m+i] = 4 + l[i*m+i]
			}
			b1 := randVec(m, rng)
			b2 := append([]float32(nil), b1...)
			trsvRef(l, b1, m)
			p.Trsv(l, b2, m)
			if d := MaxAbsDiff(b1, b2); d > tolFor(m) {
				t.Fatalf("%s Trsv m=%d: differs from ref by %g", p.Name, m, d)
			}
		}
	}
}

// TestSimdSteadyStateAllocFree extends the PR 3 acceptance criterion to
// the assembly path: pooled and per-worker calls allocate nothing once
// warm.
func TestSimdSteadyStateAllocFree(t *testing.T) {
	m := 128
	rng := rand.New(rand.NewSource(27))
	a, b, c := randBlock(m, rng), randBlock(m, rng), make([]float32, m*m)
	Simd.GemmNN(a, b, c, m)
	if n := testing.AllocsPerRun(20, func() { Simd.GemmNN(a, b, c, m) }); n != 0 {
		t.Fatalf("pooled Simd GemmNN allocates %v/op in steady state, want 0", n)
	}
	s := NewScratch()
	Simd.GemmNNS(s, a, b, c, m)
	if n := testing.AllocsPerRun(20, func() { Simd.GemmNNS(s, a, b, c, m) }); n != 0 {
		t.Fatalf("per-worker Simd GemmNN allocates %v/op in steady state, want 0", n)
	}
}

// TestConfigureEngineValidation pins the tuning API's error contract
// and that accepted parameters are visible through EngineParams.
func TestConfigureEngineValidation(t *testing.T) {
	if err := ConfigureEngine("goto", Params{MR: 4, NR: 2, KC: 64}); err == nil {
		t.Fatal("ConfigureEngine accepted a non-engine provider")
	}
	for _, name := range EngineProviders() {
		orig, ok := EngineParams(name)
		if !ok {
			t.Fatalf("EngineParams(%q) missing", name)
		}
		defer ConfigureEngine(name, orig)
		if err := ConfigureEngine(name, Params{MR: 999, NR: 999, KC: 64}); err == nil {
			t.Fatalf("%s: accepted an unimplemented 999x999 shape", name)
		}
		if err := ConfigureEngine(name, Params{MR: orig.MR, NR: orig.NR, KC: 0}); err == nil {
			t.Fatalf("%s: accepted kc=0", name)
		}
		want := Params{MR: orig.MR, NR: orig.NR, KC: 96, Crossover: 24}
		if err := ConfigureEngine(name, want); err != nil {
			t.Fatalf("%s: valid configure failed: %v", name, err)
		}
		if got, _ := EngineParams(name); got != want {
			t.Fatalf("%s: EngineParams %+v after configuring %+v", name, got, want)
		}
		// Blocking changes must not change results.
		rng := rand.New(rand.NewSource(28))
		m := 97
		a, b := randBlock(m, rng), randBlock(m, rng)
		c1 := randBlock(m, rng)
		c2 := append([]float32(nil), c1...)
		Ref.GemmNN(a, b, c1, m)
		ByName(name).GemmNN(a, b, c2, m)
		if d := MaxAbsDiff(c1, c2); d > tolFor(m) {
			t.Fatalf("%s at kc=96: GemmNN differs from Ref by %g", name, d)
		}
	}
}
