package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// frob returns the Frobenius norm of a slice.
func frob(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// frobUpper returns the Frobenius norm of the upper triangle (inclusive)
// of an m×m tile.
func frobUpper(a []float32, m int) float64 {
	var s float64
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			s += float64(a[i*m+j]) * float64(a[i*m+j])
		}
	}
	return math.Sqrt(s)
}

func randTile(m int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
	}
	return a
}

// TestGeqrtNormPreservation: an orthogonal transformation preserves the
// Frobenius norm, so ‖A‖ must equal ‖R‖ after Geqrt.
func TestGeqrtNormPreservation(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 8, 16, 32} {
		a := randTile(m, int64(m))
		before := frob(a)
		tt := make([]float32, m*m)
		Geqrt(a, tt, m)
		after := frobUpper(a, m)
		if math.Abs(before-after) > 1e-4*(1+before) {
			t.Fatalf("m=%d: ‖A‖=%g but ‖R‖=%g", m, before, after)
		}
	}
}

// TestGeqrtOrthogonality builds Qᵀ explicitly by applying the reflectors
// to the identity and checks Qᵀ·(Qᵀ)ᵀ = I.
func TestGeqrtOrthogonality(t *testing.T) {
	const m = 16
	a := randTile(m, 3)
	tt := make([]float32, m*m)
	Geqrt(a, tt, m)

	g := make([]float32, m*m) // G := Qᵀ·I
	for i := 0; i < m; i++ {
		g[i*m+i] = 1
	}
	Unmqr(a, tt, g, m)

	// C := −G·Gᵀ must be −I.
	c := make([]float32, m*m)
	Fast.GemmNT(g, g, c, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			want := float64(0)
			if i == j {
				want = -1
			}
			if diff := math.Abs(float64(c[i*m+j]) - want); diff > 1e-4 {
				t.Fatalf("(G·Gᵀ)[%d][%d] = %g, want %g", i, j, -c[i*m+j], -want)
			}
		}
	}
}

// TestGeqrtReconstruction checks A = Q·R with Q = Gᵀ built as above.
func TestGeqrtReconstruction(t *testing.T) {
	const m = 16
	orig := randTile(m, 4)
	a := append([]float32(nil), orig...)
	tt := make([]float32, m*m)
	Geqrt(a, tt, m)

	g := make([]float32, m*m)
	for i := 0; i < m; i++ {
		g[i*m+i] = 1
	}
	Unmqr(a, tt, g, m)

	r := make([]float32, m*m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			r[i*m+j] = a[i*m+j]
		}
	}
	// P := Q·R = Gᵀ·R:  P[i][j] = Σ_k G[k][i]·R[k][j].
	p := make([]float32, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var s float32
			for k := 0; k < m; k++ {
				s += g[k*m+i] * r[k*m+j]
			}
			p[i*m+j] = s
		}
	}
	scale := frob(orig)
	for i := range p {
		if diff := math.Abs(float64(p[i] - orig[i])); diff > 1e-4*(1+scale) {
			t.Fatalf("QR reconstruction mismatch at %d: got %g want %g", i, p[i], orig[i])
		}
	}
}

// TestTsqrtNormPreservation: Tsqrt orthogonally maps [R; A] to [R'; 0],
// so ‖R‖² + ‖A‖² must equal ‖R'‖².
func TestTsqrtNormPreservation(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8, 16} {
		r := randTile(m, int64(100+m))
		tt := make([]float32, m*m)
		Geqrt(r, tt, m) // make the top tile a genuine triangle
		a := randTile(m, int64(200+m))
		before := math.Sqrt(frobUpper(r, m)*frobUpper(r, m) + frob(a)*frob(a))
		t2 := make([]float32, m*m)
		Tsqrt(r, a, t2, m)
		after := frobUpper(r, m)
		if math.Abs(before-after) > 1e-4*(1+before) {
			t.Fatalf("m=%d: stacked norm %g became %g", m, before, after)
		}
	}
}

// TestTsqrtPreservesLowerV checks Tsqrt never touches the strictly-lower
// part of the triangle tile — that is where Geqrt keeps its reflectors.
func TestTsqrtPreservesLowerV(t *testing.T) {
	const m = 8
	r := randTile(m, 7)
	tt := make([]float32, m*m)
	Geqrt(r, tt, m)
	var lower []float32
	for i := 0; i < m; i++ {
		for j := 0; j < i; j++ {
			lower = append(lower, r[i*m+j])
		}
	}
	a := randTile(m, 8)
	t2 := make([]float32, m*m)
	Tsqrt(r, a, t2, m)
	k := 0
	for i := 0; i < m; i++ {
		for j := 0; j < i; j++ {
			if r[i*m+j] != lower[k] {
				t.Fatalf("Tsqrt modified V at (%d,%d)", i, j)
			}
			k++
		}
	}
}

// TestTsmqrNormPreservation is the property-based check that the Tsqrt
// reflectors applied by Tsmqr form an orthogonal transformation: for any
// stacked pair [C1; C2], the total Frobenius norm is preserved.
func TestTsmqrNormPreservation(t *testing.T) {
	const m = 8
	r := randTile(m, 9)
	tt := make([]float32, m*m)
	Geqrt(r, tt, m)
	v2 := randTile(m, 10)
	t2 := make([]float32, m*m)
	Tsqrt(r, v2, t2, m)

	property := func(seed int64) bool {
		c1 := randTile(m, seed)
		c2 := randTile(m, seed+1)
		before := math.Sqrt(frob(c1)*frob(c1) + frob(c2)*frob(c2))
		Tsmqr(c1, c2, v2, t2, m)
		after := math.Sqrt(frob(c1)*frob(c1) + frob(c2)*frob(c2))
		return math.Abs(before-after) <= 1e-4*(1+before)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGeqrtNormPreservationQuick is the property-based variant of the
// norm check over random tiles and sizes.
func TestGeqrtNormPreservationQuick(t *testing.T) {
	property := func(seed int64, mraw uint8) bool {
		m := 1 + int(mraw)%12
		a := randTile(m, seed)
		before := frob(a)
		tt := make([]float32, m*m)
		Geqrt(a, tt, m)
		return math.Abs(before-frobUpper(a, m)) <= 1e-4*(1+before)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGeqrtZeroColumn: a column that is already zero below the diagonal
// must yield tau = 0 and leave the tile consistent (H = I).
func TestGeqrtZeroColumn(t *testing.T) {
	const m = 4
	a := make([]float32, m*m)
	// Upper-triangular input: nothing to annihilate anywhere.
	want := []float32{1, 2, 3, 4, 0, 5, 6, 7, 0, 0, 8, 9, 0, 0, 0, 10}
	copy(a, want)
	tt := make([]float32, m*m)
	Geqrt(a, tt, m)
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("Geqrt changed an already-triangular tile at %d: %g → %g", i, want[i], a[i])
		}
	}
}
