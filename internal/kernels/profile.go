package kernels

// Machine profiles: the persisted output of `smpssbench -tune`.
//
// PR 3 chose the engine's blocking by a hand-run shootout on one
// container and recorded the winner as constants; a profile is that
// shootout made reproducible — the autotuner (internal/bench.Tune)
// measures every implemented tile shape × kc depth × crossover on the
// host and writes the winners here, and any later process (benchmarks,
// applications, tests) applies the file to re-block the engines to the
// machine it is actually running on.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// ProfileVersion is bumped when the profile schema changes
// incompatibly; Apply rejects files from a different major scheme.
const ProfileVersion = 1

// HostInfo identifies the machine a profile (or benchmark report) was
// measured on — enough to notice a profile traveling to foreign
// hardware, not a full inventory.
type HostInfo struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	AVX2       bool   `json:"avx2"`
	SimdActive bool   `json:"simd_active"`
}

// Host returns this process's HostInfo.
func Host() HostInfo {
	return HostInfo{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		AVX2:       SimdAvailable(),
		SimdActive: SimdActive(),
	}
}

// ProviderProfile is the measured blocking for one engine provider,
// with the rates that justified it (Gflop/s keyed by block size) kept
// for the perf trajectory.
type ProviderProfile struct {
	Params
	GflopsGemmNN map[string]float64 `json:"gflops_gemm_nn,omitempty"`
}

// Profile is the persisted machine profile.
type Profile struct {
	Version   int                        `json:"version"`
	CreatedAt string                     `json:"created_at,omitempty"`
	Host      HostInfo                   `json:"host"`
	Providers map[string]ProviderProfile `json:"providers"`
}

// DefaultProfilePath is where -tune writes and smpssbench looks by
// default: ~/.smpss/profile.json ($HOME-relative so one tuned machine
// serves every checkout on it).
func DefaultProfilePath() string {
	home, err := os.UserHomeDir()
	if err != nil {
		return filepath.Join(".smpss", "profile.json")
	}
	return filepath.Join(home, ".smpss", "profile.json")
}

// LoadProfile reads a profile from disk.
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("kernels: profile %s: %w", path, err)
	}
	return &p, nil
}

// Save writes the profile as indented JSON, creating the directory.
func (p *Profile) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply configures every engine provider named in the profile.  A
// provider whose recorded shape is not implemented by this build's
// family is skipped, not an error: a profile tuned with the assembly
// kernels must degrade gracefully on a `noasm` build or a non-AVX2
// machine, where the engine keeps its scalar defaults.  It returns the
// providers actually re-blocked.
func (p *Profile) Apply() ([]string, error) {
	if p.Version != ProfileVersion {
		return nil, fmt.Errorf("kernels: profile version %d, want %d (re-run -tune)",
			p.Version, ProfileVersion)
	}
	var applied []string
	for _, name := range EngineProviders() {
		pp, ok := p.Providers[name]
		if !ok {
			continue
		}
		if err := ConfigureEngine(name, pp.Params); err != nil {
			// Shape not in this build's family (or junk depths): keep
			// the engine's defaults rather than failing the process.
			continue
		}
		applied = append(applied, name)
	}
	return applied, nil
}
