package kernels

// The Simd provider: the packed engine (engine.go) driven by AVX2/FMA
// assembly micro-kernels where the machine and build have them, and by
// the scalar family of the Tuned provider everywhere else.
//
// Dispatch happens once, at package init: CPUID feature detection
// (cpu_amd64.s — FMA, AVX, OSXSAVE, OS ymm state via XGETBV, AVX2)
// selects the assembly family; builds under the `noasm` tag, non-amd64
// architectures, machines without AVX2/FMA, and processes started with
// SMPSS_NOSIMD=1 (the CI feature-mask job) all take the identical
// fallback path: the Simd engine is re-pointed at the scalar kernels,
// making Simd bit-compatible with Tuned.
//
// The assembly kernels consume the exact packed panels the scalar ones
// do — packing, edge handling and the kc loop are shared engine code —
// so the only difference is the register tile: 8-lane float32 ymm
// accumulators with a fused-multiply-add k loop instead of scalar XMM.
// Like the scalar family, the shape/kc/crossover blocking is engine
// parameters, re-measurable per machine with `smpssbench -tune`.

import "os"

// simdAsmDefaults is the assembly family's default blocking: the 6×16
// tile (12 ymm accumulators + 2 B lanes + 2 A broadcasts = the full
// ymm file) with the scalar engine's kc, until a machine profile says
// otherwise.
var simdAsmDefaults = Params{MR: 6, NR: 16, KC: 256, Crossover: 16}

var (
	// simdHW records whether the assembly kernels are compiled in and
	// the CPU supports them; simdOn whether dispatch currently selects
	// them (false when masked by SMPSS_NOSIMD or the test hook).
	simdHW bool
	simdOn bool
	// simdGemv is the Gemv implementation behind the Simd provider's
	// closure, swapped with the family by the dispatch.
	simdGemv func(a, x, y []float32, m int) = gemvFast
)

// simdEngine drives whichever family dispatch selected.
var simdEngine = buildSimdEngine()

// Simd is the SIMD micro-kernel provider.
var Simd = buildSimdProvider()

func buildSimdEngine() *engine {
	fam, gemv, hw := archSimdKernels()
	simdHW = hw
	if fam == nil || os.Getenv("SMPSS_NOSIMD") != "" {
		return newEngine("simd", scalarKernels, tunedDefaults)
	}
	simdOn = true
	simdGemv = gemv
	return newEngine("simd", fam, simdAsmDefaults)
}

func buildSimdProvider() Provider {
	p := engineProvider("simd", simdEngine)
	// Indirect through simdGemv so the forced-fallback hook swaps the
	// vector kernel together with the tile family.
	p.Gemv = func(a, x, y []float32, m int) { simdGemv(a, x, y, m) }
	return p
}

// SimdAvailable reports whether the AVX2/FMA assembly kernels are
// compiled into this binary and supported by this CPU.
func SimdAvailable() bool { return simdHW }

// SimdActive reports whether the Simd provider currently dispatches to
// the assembly kernels (false on the fallback path: unsupported CPU,
// `noasm` build, SMPSS_NOSIMD, or a forced-fallback test).
func SimdActive() bool { return simdOn }

// simdForce is the test hook behind the forced-fallback dispatch test:
// simdForce(false) re-points the Simd engine at the scalar family
// exactly as init does on machines without AVX2; simdForce(true)
// restores the assembly family when available.  It reports whether the
// assembly kernels are now active.  Not safe concurrently with running
// Simd kernels (the engine config swap is atomic, but simdGemv is not).
func simdForce(on bool) bool {
	fam, gemv, _ := archSimdKernels()
	if !on || fam == nil {
		simdEngine.setFamily(scalarKernels, tunedDefaults)
		simdGemv = gemvFast
		simdOn = false
		return false
	}
	simdEngine.setFamily(fam, simdAsmDefaults)
	simdGemv = gemv
	simdOn = true
	return true
}
