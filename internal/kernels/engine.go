package kernels

// The packed micro-kernel engine, parameterized over its blocking
// parameters.  PR 3 introduced the engine with the tile shape and
// k-chunk depth as compile-time constants chosen by a hand-run shootout
// on one container; this file is the same Goto/BLIS decomposition with
// the shape turned into data so a machine profile (profile.go, measured
// by `smpssbench -tune`) can re-block the engine for the host it is
// actually running on.
//
// An engine is a family of register-tile micro-kernels (each a fixed
// mr×nr shape — the shape is the register allocation, so it cannot be a
// runtime loop bound inside the kernel) plus a current configuration:
// which family member to drive, how deep to chunk k (kc), and below
// which block size to delegate to the streaming loops (crossover).
// The driver loops, the packing routines and the edge handling are
// generic over (mr, nr, kc); only the innermost kernel is shape-bound.
//
// Two engines exist: the scalar engine behind the Tuned provider
// (tuned.go) and the AVX2/FMA assembly engine behind the Simd provider
// (simd.go), which degrades to the scalar family when the hardware or
// build lacks the assembly kernels.

import (
	"fmt"
	"sync/atomic"
)

// Params are the tunable blocking parameters of a packed engine: the
// register tile shape (MR×NR), the k-chunk depth KC, and the Crossover
// block size below which the engine delegates to the streaming loops.
type Params struct {
	MR        int `json:"mr"`
	NR        int `json:"nr"`
	KC        int `json:"kc"`
	Crossover int `json:"crossover"`
}

// tileFunc is one register-tile micro-kernel: C ±= Ap·Bp over kk packed
// steps for a full mr×nr tile.  Ap is an mr×kk column-major panel
// (ap[k*mr+r]), Bp a kk×nr row-major panel (bp[k*nr+c]); both are fully
// padded, so the k loop never branches on shape.  The tile is written
// directly to c with row stride ldc — add when !sub, subtract when sub.
type tileFunc func(ap, bp, c []float32, ldc, kk int, sub bool)

// tileKernel binds a micro-kernel to its shape.
type tileKernel struct {
	mr, nr int
	kern   tileFunc
}

// engineConfig is one immutable engine configuration; the engine swaps
// whole configurations atomically so a Configure racing with in-flight
// kernels is safe (each kernel call reads the pointer once).
type engineConfig struct {
	kern      tileKernel
	kc        int
	crossover int
}

// engine drives the packed decomposition for one micro-kernel family.
type engine struct {
	name   string
	family []tileKernel
	cfg    atomic.Pointer[engineConfig]
}

// newEngine builds an engine over the family, configured to defaults.
func newEngine(name string, family []tileKernel, def Params) *engine {
	e := &engine{name: name, family: family}
	if err := e.configure(def); err != nil {
		panic("kernels: bad default engine params: " + err.Error())
	}
	return e
}

// shapes returns the family's candidate (MR, NR) shapes with the
// engine's current KC/Crossover filled in, the tuner's sweep axis.
func (e *engine) shapes() []Params {
	cur := e.cfg.Load()
	out := make([]Params, len(e.family))
	for i, k := range e.family {
		out[i] = Params{MR: k.mr, NR: k.nr, KC: cur.kc, Crossover: cur.crossover}
	}
	return out
}

// params returns the current configuration.
func (e *engine) params() Params {
	c := e.cfg.Load()
	return Params{MR: c.kern.mr, NR: c.kern.nr, KC: c.kc, Crossover: c.crossover}
}

// configure installs p, validating that the shape names an implemented
// family member and the depths are sane.
func (e *engine) configure(p Params) error {
	if p.KC < 1 {
		return fmt.Errorf("kernels: engine %s: kc %d < 1", e.name, p.KC)
	}
	if p.Crossover < 0 {
		return fmt.Errorf("kernels: engine %s: crossover %d < 0", e.name, p.Crossover)
	}
	for _, k := range e.family {
		if k.mr == p.MR && k.nr == p.NR {
			e.cfg.Store(&engineConfig{kern: k, kc: p.KC, crossover: p.Crossover})
			return nil
		}
	}
	return fmt.Errorf("kernels: engine %s: no %d×%d micro-kernel (shapes: %v)",
		e.name, p.MR, p.NR, e.shapeList())
}

// setFamily swaps the micro-kernel family (the Simd engine's forced
// fallback uses it) and re-blocks to the given defaults.
func (e *engine) setFamily(family []tileKernel, def Params) {
	e.family = family
	if err := e.configure(def); err != nil {
		panic("kernels: bad engine family swap: " + err.Error())
	}
}

func (e *engine) shapeList() []string {
	var out []string
	for _, k := range e.family {
		out = append(out, fmt.Sprintf("%dx%d", k.mr, k.nr))
	}
	return out
}

// engines indexes the tunable engine providers by provider name.
var engines = map[string]*engine{}

// EngineProviders lists the provider names backed by a parameterized
// packed engine, in plot order.
func EngineProviders() []string {
	var out []string
	for _, p := range Providers {
		if engines[p.Name] != nil {
			out = append(out, p.Name)
		}
	}
	return out
}

// EngineShapes returns the named engine provider's candidate tile
// shapes (the implemented micro-kernels), each with the current
// KC/Crossover.  Nil for providers without an engine.
func EngineShapes(provider string) []Params {
	e := engines[provider]
	if e == nil {
		return nil
	}
	return e.shapes()
}

// EngineParams returns the named engine provider's current blocking
// parameters.
func EngineParams(provider string) (Params, bool) {
	e := engines[provider]
	if e == nil {
		return Params{}, false
	}
	return e.params(), true
}

// ConfigureEngine installs blocking parameters on the named engine
// provider.  The shape must name an implemented micro-kernel of that
// engine's family (see EngineShapes).
func ConfigureEngine(provider string, p Params) error {
	e := engines[provider]
	if e == nil {
		return fmt.Errorf("kernels: provider %q has no tunable engine (have: %v)",
			provider, EngineProviders())
	}
	return e.configure(p)
}

// --- provider entry points -------------------------------------------

// The eight entry points below are bound into Provider structs as
// method values (engineProvider); the plain four borrow a pooled
// scratch, the S variants take the executing worker's.

func (e *engine) GemmNN(a, b, c []float32, m int) {
	if m < e.cfg.Load().crossover {
		gemmNNFast(a, b, c, m)
		return
	}
	s := AcquireScratch()
	e.gemm(s, a, b, c, m, false, false)
	ReleaseScratch(s)
}

func (e *engine) GemmNT(a, b, c []float32, m int) {
	if m < e.cfg.Load().crossover {
		gemmNTFast(a, b, c, m)
		return
	}
	s := AcquireScratch()
	e.gemm(s, a, b, c, m, true, true)
	ReleaseScratch(s)
}

func (e *engine) Syrk(a, c []float32, m int) {
	if m < e.cfg.Load().crossover {
		syrkFast(a, c, m)
		return
	}
	s := AcquireScratch()
	e.syrk(s, a, c, m)
	ReleaseScratch(s)
}

func (e *engine) GemmSub(a, b, c []float32, m int) {
	if m < e.cfg.Load().crossover {
		GemmSubNN(a, b, c, m)
		return
	}
	s := AcquireScratch()
	e.gemm(s, a, b, c, m, false, true)
	ReleaseScratch(s)
}

func (e *engine) GemmNNS(s *Scratch, a, b, c []float32, m int) {
	if m < e.cfg.Load().crossover {
		gemmNNFast(a, b, c, m)
		return
	}
	e.gemm(s, a, b, c, m, false, false)
}

func (e *engine) GemmNTS(s *Scratch, a, b, c []float32, m int) {
	if m < e.cfg.Load().crossover {
		gemmNTFast(a, b, c, m)
		return
	}
	e.gemm(s, a, b, c, m, true, true)
}

func (e *engine) SyrkS(s *Scratch, a, c []float32, m int) {
	if m < e.cfg.Load().crossover {
		syrkFast(a, c, m)
		return
	}
	e.syrk(s, a, c, m)
}

func (e *engine) GemmSubS(s *Scratch, a, b, c []float32, m int) {
	if m < e.cfg.Load().crossover {
		GemmSubNN(a, b, c, m)
		return
	}
	e.gemm(s, a, b, c, m, false, true)
}

// engineProvider builds a Provider over the engine; the lower-order or
// bandwidth-bound sidekicks (Trsm, Potrf, Add, Sub, Gemv, Trsv) inherit
// the Fast loops — the packing layout brings them nothing.  Callers may
// override fields afterwards (Simd swaps in its FMA Gemv).
func engineProvider(name string, e *engine) Provider {
	engines[name] = e
	return Provider{
		Name:     name,
		GemmNN:   e.GemmNN,
		GemmNT:   e.GemmNT,
		Syrk:     e.Syrk,
		Trsm:     trsmFast,
		Potrf:    potrf,
		GemmSub:  e.GemmSub,
		Add:      addFast,
		Sub:      subFast,
		Gemv:     gemvFast,
		Trsv:     trsvFast,
		GemmNNS:  e.GemmNNS,
		GemmNTS:  e.GemmNTS,
		SyrkS:    e.SyrkS,
		GemmSubS: e.GemmSubS,
	}
}

// --- the packed decomposition ----------------------------------------

// gemm drives the engine: C ±= A·op(B) with op = Bᵀ when transB.
// sub selects subtraction at write-back (GemmNT/GemmSub's contract).
func (e *engine) gemm(s *Scratch, a, b, c []float32, m int, transB, sub bool) {
	cfg := e.cfg.Load()
	mr, nr, kcd := cfg.kern.mr, cfg.kern.nr, cfg.kc
	np := (m + nr - 1) / nr
	kcap := min(kcd, m)
	bpLen, apLen := np*kcap*nr, mr*kcap
	arena := s.ensure(bpLen + apLen + mr*nr)
	bp := arena[:bpLen:bpLen]
	ap := arena[bpLen : bpLen+apLen : bpLen+apLen]
	tile := arena[bpLen+apLen:]
	for k0 := 0; k0 < m; k0 += kcd {
		kk := min(kcd, m-k0)
		if transB {
			packBT(bp, b, m, k0, kk, nr)
		} else {
			packBN(bp, b, m, k0, kk, nr)
		}
		for i0 := 0; i0 < m; i0 += mr {
			rows := min(mr, m-i0)
			packA(ap, a, m, i0, rows, k0, kk, mr)
			for jp := 0; jp < np; jp++ {
				j0 := jp * nr
				cols := min(nr, m-j0)
				if rows == mr && cols == nr {
					cfg.kern.kern(ap, bp[jp*kk*nr:], c[i0*m+j0:], m, kk, sub)
				} else {
					edgeTile(cfg.kern, ap, bp[jp*kk*nr:], tile,
						c[i0*m+j0:], m, kk, rows, cols, sub)
				}
			}
		}
	}
}

// syrk is gemm with B = Aᵀ, visiting only tiles that intersect the
// lower triangle and masking the write-back of diagonal-crossing tiles.
func (e *engine) syrk(s *Scratch, a, c []float32, m int) {
	cfg := e.cfg.Load()
	mr, nr, kcd := cfg.kern.mr, cfg.kern.nr, cfg.kc
	np := (m + nr - 1) / nr
	kcap := min(kcd, m)
	bpLen, apLen := np*kcap*nr, mr*kcap
	arena := s.ensure(bpLen + apLen + mr*nr)
	bp := arena[:bpLen:bpLen]
	ap := arena[bpLen : bpLen+apLen : bpLen+apLen]
	tile := arena[bpLen+apLen:]
	for k0 := 0; k0 < m; k0 += kcd {
		kk := min(kcd, m-k0)
		packBT(bp, a, m, k0, kk, nr)
		for i0 := 0; i0 < m; i0 += mr {
			rows := min(mr, m-i0)
			packA(ap, a, m, i0, rows, k0, kk, mr)
			// Only tiles whose first column is on or below the last row.
			for jp := 0; jp*nr <= i0+rows-1 && jp < np; jp++ {
				j0 := jp * nr
				cols := min(nr, m-j0)
				if j0+cols-1 <= i0 && rows == mr && cols == nr {
					// Entirely within the lower triangle, full shape.
					cfg.kern.kern(ap, bp[jp*kk*nr:], c[i0*m+j0:], m, kk, true)
				} else {
					lowerTile(cfg.kern, ap, bp[jp*kk*nr:], tile,
						c[i0*m+j0:], m, kk, rows, cols, i0-j0)
				}
			}
		}
	}
}

// edgeTile runs the micro-kernel for a partial tile: the kernel always
// computes a full mr×nr product, so it accumulates into a zeroed
// scratch tile (ldc = nr) and the write-back into C is masked to
// rows×cols.  Edges are O(m²) of an O(m³) computation; the detour
// through the scratch tile keeps every kernel's k loop shape-free.
func edgeTile(k tileKernel, ap, bp, tile, c []float32, ldc, kk, rows, cols int, sub bool) {
	n := k.mr * k.nr
	tile = tile[:n:n]
	for i := range tile {
		tile[i] = 0
	}
	k.kern(ap, bp, tile, k.nr, kk, false)
	for r := 0; r < rows; r++ {
		if sub {
			for j := 0; j < cols; j++ {
				c[r*ldc+j] -= tile[r*k.nr+j]
			}
		} else {
			for j := 0; j < cols; j++ {
				c[r*ldc+j] += tile[r*k.nr+j]
			}
		}
	}
}

// lowerTile is edgeTile for a Syrk tile that crosses the diagonal: the
// write-back subtracts only at positions on or below the block diagonal
// (global row i0+r ≥ global column j0+j, i.e. r+diag ≥ j with
// diag = i0-j0).
func lowerTile(k tileKernel, ap, bp, tile, c []float32, ldc, kk, rows, cols, diag int) {
	n := k.mr * k.nr
	tile = tile[:n:n]
	for i := range tile {
		tile[i] = 0
	}
	k.kern(ap, bp, tile, k.nr, kk, false)
	for r := 0; r < rows; r++ {
		jmax := r + diag
		if jmax >= cols {
			jmax = cols - 1
		}
		for j := 0; j <= jmax; j++ {
			c[r*ldc+j] -= tile[r*k.nr+j]
		}
	}
}

// packA packs rows i0..i0+rows-1 of the k-chunk a[·][k0:k0+kk] as one
// mr×kk panel: ap[k*mr+r] = a[(i0+r)*lda + k0+k], rows past the edge
// zero-filled so the micro-kernel always consumes a full panel.
func packA(ap, a []float32, lda, i0, rows, k0, kk, mr int) {
	ap = ap[: kk*mr : kk*mr]
	for r := 0; r < rows; r++ {
		src := a[(i0+r)*lda+k0 : (i0+r)*lda+k0+kk]
		for k, v := range src {
			ap[k*mr+r] = v
		}
	}
	for r := rows; r < mr; r++ {
		for k := 0; k < kk; k++ {
			ap[k*mr+r] = 0
		}
	}
}

// packBN packs the k-chunk of B into column panels of nr:
// bp[jp*kk*nr + k*nr + c] = b[(k0+k)*ldb + jp*nr+c], edge columns
// zero-filled.
func packBN(bp, b []float32, ldb, k0, kk, nr int) {
	np := (ldb + nr - 1) / nr
	for jp := 0; jp < np; jp++ {
		j0 := jp * nr
		cols := min(nr, ldb-j0)
		dst := bp[jp*kk*nr : (jp+1)*kk*nr : (jp+1)*kk*nr]
		if cols == nr {
			for k := 0; k < kk; k++ {
				src := b[(k0+k)*ldb+j0 : (k0+k)*ldb+j0+nr]
				copy(dst[k*nr:(k+1)*nr], src)
			}
		} else {
			for k := 0; k < kk; k++ {
				src := b[(k0+k)*ldb+j0 : (k0+k)*ldb+j0+cols]
				row := dst[k*nr : (k+1)*nr]
				n := copy(row, src)
				for c := n; c < nr; c++ {
					row[c] = 0
				}
			}
		}
	}
}

// packBT packs the k-chunk of Bᵀ into column panels of nr — column j of
// op(B) is row j of B, so each packed lane streams one contiguous row:
// bp[jp*kk*nr + k*nr + c] = b[(jp*nr+c)*ldb + k0+k].
func packBT(bp, b []float32, ldb, k0, kk, nr int) {
	np := (ldb + nr - 1) / nr
	for jp := 0; jp < np; jp++ {
		j0 := jp * nr
		cols := min(nr, ldb-j0)
		dst := bp[jp*kk*nr : (jp+1)*kk*nr : (jp+1)*kk*nr]
		for c := 0; c < cols; c++ {
			src := b[(j0+c)*ldb+k0 : (j0+c)*ldb+k0+kk]
			for k, v := range src {
				dst[k*nr+c] = v
			}
		}
		for c := cols; c < nr; c++ {
			for k := 0; k < kk; k++ {
				dst[k*nr+c] = 0
			}
		}
	}
}
