package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hypermatrix"
)

var testBC = HeatBC{Top: 1}

// heatGrid builds an n-blocks × m-elements grid with a deterministic
// nonuniform initial temperature field.
func heatGrid(n, m int) *hypermatrix.Matrix {
	h := hypermatrix.New(n, m)
	dim := n * m
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			h.Set(r, c, float32(r*31+c*17%am(7))/float32(dim*48))
		}
	}
	return h
}

func am(v int) int { return v + 1 }

// TestHeatBlockedMatchesFlat asserts the claim in the HeatSeqGS doc
// comment: for the four-point stencil, the blocked sweep computes exactly
// the element-raster sweep's values.
func TestHeatBlockedMatchesFlat(t *testing.T) {
	const n, m, sweeps = 3, 8, 5
	h := heatGrid(n, m)
	flat := h.ToFlat()
	HeatSeqGS(h, testBC, sweeps)
	HeatGSFlat(flat, n*m, testBC, sweeps)
	got := h.ToFlat()
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatalf("blocked and flat Gauss-Seidel diverge at %d: %g vs %g", i, got[i], flat[i])
		}
	}
}

// TestHeatSMPSsGSMatchesSeq is the gold test: the wavefront derived by
// the dependency tracker must reproduce the sequential in-place sweep bit
// for bit.
func TestHeatSMPSsGSMatchesSeq(t *testing.T) {
	const n, m, sweeps = 4, 8, 6
	ref := heatGrid(n, m)
	mine := ref.Clone()
	HeatSeqGS(ref, testBC, sweeps)

	rt := core.New(core.Config{Workers: 8})
	if err := HeatSMPSsGS(rt.Context(), mine, testBC, sweeps); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	got, want := mine.ToFlat(), ref.ToFlat()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d differs: %g vs %g (must be exact)", i, got[i], want[i])
		}
	}
}

// TestHeatSMPSsJacobiMatchesSeq: the double-buffered Jacobi task version
// must match the sequential Jacobi exactly.
func TestHeatSMPSsJacobiMatchesSeq(t *testing.T) {
	for _, sweeps := range []int{1, 2, 7} { // odd and even: both buffers end up holding the result
		ref := heatGrid(3, 8)
		mine := ref.Clone()
		want := HeatSeqJacobi(ref, testBC, sweeps)

		rt := core.New(core.Config{Workers: 6})
		res, err := HeatSMPSsJacobi(rt.Context(), mine, testBC, sweeps)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		got, w := res.ToFlat(), want.ToFlat()
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("sweeps=%d: element %d differs: %g vs %g", sweeps, i, got[i], w[i])
			}
		}
	}
}

// TestHeatConverges checks physics: the stencil residual must shrink as
// sweeps accumulate, and Gauss-Seidel must converge faster than Jacobi
// for the same sweep count.
func TestHeatConverges(t *testing.T) {
	const n, m = 3, 8
	gs := heatGrid(n, m)
	r0 := HeatResidual(gs, testBC)
	HeatSeqGS(gs, testBC, 10)
	r10 := HeatResidual(gs, testBC)
	HeatSeqGS(gs, testBC, 40)
	r50 := HeatResidual(gs, testBC)
	if !(r10 < r0 && r50 < r10) {
		t.Fatalf("Gauss-Seidel residual not decreasing: %g → %g → %g", r0, r10, r50)
	}

	jac := heatGrid(n, m)
	jres := HeatSeqJacobi(jac, testBC, 10)
	if rj := HeatResidual(jres, testBC); rj <= r10 {
		t.Fatalf("Jacobi (%g) converged faster than Gauss-Seidel (%g) after 10 sweeps", rj, r10)
	}
}

// TestHeatWavefrontParallelism checks the structural claim: within one
// sweep the tasks must not form a single chain — the true-edge count per
// task must stay below the 5 (self + 4 neighbours) worst case, and a
// multi-sweep run must rename (the across-sweep pipelining mechanism).
func TestHeatWavefrontParallelism(t *testing.T) {
	const n, m, sweeps = 6, 4, 4
	rt := core.New(core.Config{Workers: 8})
	h := heatGrid(n, m)
	if err := HeatSMPSsGS(rt.Context(), h, testBC, sweeps); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.TasksExecuted != n*n*sweeps {
		t.Fatalf("executed %d tasks, want %d", st.TasksExecuted, n*n*sweeps)
	}
	if st.Deps.Renames == 0 {
		t.Fatal("no renames: across-sweep pipelining is not happening")
	}
	if st.Deps.FalseEdges != 0 {
		t.Fatalf("%d false edges materialized despite renaming", st.Deps.FalseEdges)
	}
}
