package apps

import (
	"repro/internal/core"
)

// Stream is a bandwidth-style triad built around the exact pattern §II
// gives as the canonical renaming case: "renaming is typically applied
// whenever an algorithm uses a temporary variable or a work array that
// is accessed by several tasks.  In order to avoid false dependencies on
// those, most programming paradigms require per-thread copies ...  This
// problem is avoided transparently through automatic renaming."
//
// Each step computes c[blk] += scale·(a[blk] + b[blk]) through a single
// shared work array t:
//
//	add_t(a[blk], b[blk], t)        output(t)
//	axpy_t(t, c[blk], scale)        input(t) inout(c[blk])
//
// Sequentially, one t suffices.  Under a dependency-unaware parallel
// model the programmer must allocate one t per thread by hand; under
// SMPSs the Out(t) of every add opens a fresh version, so all
// blocks·iters steps are independent apart from each block's own c
// chain — with the program still naming exactly one temporary.

// StreamVectors holds the blocked operands: nb blocks of m elements.
type StreamVectors struct {
	M       int
	A, B, C [][]float32
}

// NewStreamVectors builds nb blocks of m elements with deterministic
// contents.
func NewStreamVectors(nb, m int) *StreamVectors {
	v := &StreamVectors{M: m}
	mk := func(scale int) [][]float32 {
		blocks := make([][]float32, nb)
		for i := range blocks {
			blocks[i] = make([]float32, m)
			for j := range blocks[i] {
				blocks[i][j] = float32((i*m+j)%17 + scale)
			}
		}
		return blocks
	}
	v.A, v.B, v.C = mk(1), mk(2), mk(3)
	return v
}

// StreamSeq runs iters triad sweeps sequentially through one shared
// temporary block — the plain C program an SMPSs user would write.
func StreamSeq(v *StreamVectors, scale float32, iters int) {
	t := make([]float32, v.M)
	for it := 0; it < iters; it++ {
		for blk := range v.A {
			a, b, c := v.A[blk], v.B[blk], v.C[blk]
			for j := range t {
				t[j] = a[j] + b[j]
			}
			for j := range c {
				c[j] += scale * t[j]
			}
		}
	}
}

// StreamSMPSs runs the same sweeps as tasks sharing the single temporary
// t; automatic renaming removes every false dependency on it.
func StreamSMPSs(ctx *core.Context, v *StreamVectors, scale float32, iters int) error {
	m := v.M
	add := core.NewTaskDef("stream_add", func(a *core.Args) {
		x, y, t := a.F32(0), a.F32(1), a.F32(2)
		for j := 0; j < m; j++ {
			t[j] = x[j] + y[j]
		}
	})
	axpy := core.NewTaskDef("stream_axpy", func(a *core.Args) {
		t, c := a.F32(0), a.F32(1)
		s := float32(a.Float(2))
		for j := 0; j < m; j++ {
			c[j] += s * t[j]
		}
	})
	t := make([]float32, m) // the one temporary the program names
	sub := &submitter{ctx: ctx}
	for it := 0; it < iters; it++ {
		for blk := range v.A {
			sub.submit(add, core.In(v.A[blk]), core.In(v.B[blk]), core.Out(t))
			sub.submit(axpy, core.In(t), core.InOut(v.C[blk]), core.Value(scale))
		}
	}
	return sub.finish()
}
