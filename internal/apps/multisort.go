// Package apps implements the two non-linear-algebra workloads of the
// paper's evaluation — Multisort (§VI.D) and N-Queens (§VI.E) — in all
// the programming models the paper compares: sequential, SMPSs, Cilk and
// OpenMP 3.0 tasks.  The codes follow the Cilk 5 distribution examples
// the paper adapted.
package apps

import (
	"sort"

	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/omptask"
)

// SortConfig tunes the multisort granularity.
type SortConfig struct {
	// QuickSize is the paper's QUICKSIZE: subarrays at most this long
	// are sorted directly by the seqquick task.
	QuickSize int
	// MergeSize bounds the leaf seqmerge task size.
	MergeSize int
}

// DefaultSortConfig matches the granularity regime of the Cilk 5
// cilksort example (scaled for task granularities of ~100µs on modern
// cores).
var DefaultSortConfig = SortConfig{QuickSize: 16 << 10, MergeSize: 16 << 10}

// insertionThreshold is the cutoff below which seqquick switches to
// insertion sort ("insertion sort for very small regions", §VI.D).
const insertionThreshold = 24

// insertionSort sorts data in place.
func insertionSort(data []int64) {
	for i := 1; i < len(data); i++ {
		v := data[i]
		j := i - 1
		for j >= 0 && data[j] > v {
			data[j+1] = data[j]
			j--
		}
		data[j+1] = v
	}
}

// seqQuick is the seqquick task body: an in-place quicksort with
// median-of-three pivoting and an insertion-sort base case.
func seqQuick(data []int64) {
	for len(data) > insertionThreshold {
		lo, hi := 0, len(data)-1
		mid := lo + (hi-lo)/2
		// Median-of-three to the middle.
		if data[mid] < data[lo] {
			data[mid], data[lo] = data[lo], data[mid]
		}
		if data[hi] < data[lo] {
			data[hi], data[lo] = data[lo], data[hi]
		}
		if data[hi] < data[mid] {
			data[hi], data[mid] = data[mid], data[hi]
		}
		pivot := data[mid]
		i, j := lo, hi
		for i <= j {
			for data[i] < pivot {
				i++
			}
			for data[j] > pivot {
				j--
			}
			if i <= j {
				data[i], data[j] = data[j], data[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j-lo < hi-i {
			seqQuick(data[lo : j+1])
			data = data[i : hi+1]
		} else {
			seqQuick(data[i : hi+1])
			data = data[lo : j+1]
		}
	}
	insertionSort(data)
}

// seqMerge is the seqmerge task body: merge two sorted runs into dest.
func seqMerge(a, b, dest []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dest[k] = a[i]
			i++
		} else {
			dest[k] = b[j]
			j++
		}
		k++
	}
	k += copy(dest[k:], a[i:])
	copy(dest[k:], b[j:])
}

// MultisortSeq is the sequential baseline: the same 4-way multisort
// structure run without any parallel artifacts (the paper insists the
// sequential version must not contain per-task copies, §VI.E applies the
// same philosophy here).
func MultisortSeq(data []int64, cfg SortConfig) {
	tmp := make([]int64, len(data))
	seqMultisort(data, tmp, cfg)
}

func seqMultisort(data, tmp []int64, cfg SortConfig) {
	n := len(data)
	if n <= cfg.QuickSize {
		seqQuick(data)
		return
	}
	q := n / 4
	i1, j1 := 0, q
	i2, j2 := q, 2*q
	i3, j3 := 2*q, 3*q
	i4, j4 := 3*q, n
	seqMultisort(data[i1:j1], tmp[i1:j1], cfg)
	seqMultisort(data[i2:j2], tmp[i2:j2], cfg)
	seqMultisort(data[i3:j3], tmp[i3:j3], cfg)
	seqMultisort(data[i4:j4], tmp[i4:j4], cfg)
	seqMerge(data[i1:j1], data[i2:j2], tmp[i1:j2])
	seqMerge(data[i3:j3], data[i4:j4], tmp[i3:j4])
	seqMerge(tmp[i1:j2], tmp[i3:j4], data)
}

// lowerBound returns the first index in sorted run r with r[i] >= v.
func lowerBound(r []int64, v int64) int {
	return sort.Search(len(r), func(i int) bool { return r[i] >= v })
}

// ---------------------------------------------------------------------
// Cilk version: spawn/sync with recursive parallel merge (the cilksort
// example the paper's code is based on).

// MultisortCilk sorts data on a Cilk-style runtime.
func MultisortCilk(rt *cilkrt.RT, data []int64, cfg SortConfig) {
	tmp := make([]int64, len(data))
	rt.Run(func(c *cilkrt.Ctx) { cilkSort(c, data, tmp, cfg) })
}

func cilkSort(c *cilkrt.Ctx, data, tmp []int64, cfg SortConfig) {
	n := len(data)
	if n <= cfg.QuickSize {
		seqQuick(data)
		return
	}
	q := n / 4
	d1, t1 := data[0:q], tmp[0:q]
	d2, t2 := data[q:2*q], tmp[q:2*q]
	d3, t3 := data[2*q:3*q], tmp[2*q:3*q]
	d4, t4 := data[3*q:], tmp[3*q:]
	c.Spawn(func(c *cilkrt.Ctx) { cilkSort(c, d1, t1, cfg) })
	c.Spawn(func(c *cilkrt.Ctx) { cilkSort(c, d2, t2, cfg) })
	c.Spawn(func(c *cilkrt.Ctx) { cilkSort(c, d3, t3, cfg) })
	cilkSort(c, d4, t4, cfg)
	c.Sync()
	c.Spawn(func(c *cilkrt.Ctx) { cilkMerge(c, d1, d2, tmp[0:2*q], cfg) })
	cilkMerge(c, d3, d4, tmp[2*q:], cfg)
	c.Sync()
	cilkMerge(c, tmp[0:2*q], tmp[2*q:], data, cfg)
	c.Sync()
}

// cilkMerge merges sorted runs a and b into dest with divide-and-conquer
// parallelism: split a at its middle, binary-search the split point in
// b, and merge the two halves in parallel.
func cilkMerge(c *cilkrt.Ctx, a, b, dest []int64, cfg SortConfig) {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(a)+len(b) <= cfg.MergeSize || len(a) <= 1 {
		seqMerge(a, b, dest)
		return
	}
	ma := len(a) / 2
	mb := lowerBound(b, a[ma])
	al, ar := a[:ma], a[ma:]
	bl, br := b[:mb], b[mb:]
	c.Spawn(func(c *cilkrt.Ctx) { cilkMerge(c, al, bl, dest[:ma+mb], cfg) })
	cilkMerge(c, ar, br, dest[ma+mb:], cfg)
	c.Sync()
}

// ---------------------------------------------------------------------
// OpenMP 3.0 tasks version: identical structure with task/taskwait.

// MultisortOMP sorts data on the OpenMP-tasks-style runtime.
func MultisortOMP(rt *omptask.RT, data []int64, cfg SortConfig) {
	tmp := make([]int64, len(data))
	rt.Parallel(func(c *omptask.Ctx) { ompSort(c, data, tmp, cfg) })
}

func ompSort(c *omptask.Ctx, data, tmp []int64, cfg SortConfig) {
	n := len(data)
	if n <= cfg.QuickSize {
		seqQuick(data)
		return
	}
	q := n / 4
	d1, t1 := data[0:q], tmp[0:q]
	d2, t2 := data[q:2*q], tmp[q:2*q]
	d3, t3 := data[2*q:3*q], tmp[2*q:3*q]
	d4, t4 := data[3*q:], tmp[3*q:]
	c.Task(func(c *omptask.Ctx) { ompSort(c, d1, t1, cfg) })
	c.Task(func(c *omptask.Ctx) { ompSort(c, d2, t2, cfg) })
	c.Task(func(c *omptask.Ctx) { ompSort(c, d3, t3, cfg) })
	ompSort(c, d4, t4, cfg)
	c.Taskwait()
	c.Task(func(c *omptask.Ctx) { ompMerge(c, d1, d2, tmp[0:2*q], cfg) })
	ompMerge(c, d3, d4, tmp[2*q:], cfg)
	c.Taskwait()
	ompMerge(c, tmp[0:2*q], tmp[2*q:], data, cfg)
	c.Taskwait()
}

func ompMerge(c *omptask.Ctx, a, b, dest []int64, cfg SortConfig) {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(a)+len(b) <= cfg.MergeSize || len(a) <= 1 {
		seqMerge(a, b, dest)
		return
	}
	ma := len(a) / 2
	mb := lowerBound(b, a[ma])
	al, ar := a[:ma], a[ma:]
	bl, br := b[:mb], b[mb:]
	c.Task(func(c *omptask.Ctx) { ompMerge(c, al, bl, dest[:ma+mb], cfg) })
	ompMerge(c, ar, br, dest[ma+mb:], cfg)
	c.Taskwait()
}

// ---------------------------------------------------------------------
// SMPSs version: array-region tasks (paper Fig. 7 + §VI.D).
//
// Leaf quicksorts and leaf merges are tasks carrying region
// directionality on the data and tmp arrays; the recursive sort/merge
// decomposition runs on the main thread, exactly as §VI.D describes
// ("the seqmerge task invocations have been replaced by calls to a
// recursive merge function that ends up calling said task when the
// operated range is small enough").
//
// One divergence is forced by the model: splitting a merge range needs
// binary searches on already-sorted data, so before decomposing a merge
// the main thread performs a WaitOn on the two source regions (executing
// tasks while it waits).  The leaf tasks of independent subtrees still
// overlap freely through their region dependencies.

type smpssSorter struct {
	ctx      *core.Context
	data     []int64
	tmp      []int64
	cfg      SortConfig
	coarse   bool
	seqquick *core.TaskDef
	seqmerge *core.TaskDef
	seqcopy  *core.TaskDef
	err      error // first submission refusal; later submits are skipped
}

// submit forwards to the context until the first refusal (closed or
// canceled context) and latches it: every later submission would fail
// with the same error, so the sort just stops feeding the graph.
func (s *smpssSorter) submit(def *core.TaskDef, args ...core.Arg) {
	if s.err == nil {
		s.err = s.ctx.Submit(def, args...)
	}
}

// MultisortSMPSs sorts data on the SMPSs runtime using array-region
// dependencies.
func MultisortSMPSs(ctx *core.Context, data []int64, cfg SortConfig) error {
	return multisortSMPSs(ctx, data, cfg, false)
}

// MultisortSMPSsCoarse is the regions-off ablation: every task declares
// whole-array directionality, which is all the 2008 runtime could
// express without representants (§V.B).  The resulting dependency chains
// serialize the sort, quantifying what the array-region extension buys.
func MultisortSMPSsCoarse(ctx *core.Context, data []int64, cfg SortConfig) error {
	return multisortSMPSs(ctx, data, cfg, true)
}

func multisortSMPSs(ctx *core.Context, data []int64, cfg SortConfig, coarse bool) error {
	s := &smpssSorter{ctx: ctx, data: data, tmp: make([]int64, len(data)), cfg: cfg, coarse: coarse}
	// #pragma css task inout(data{i..j}) input(i, j)
	s.seqquick = core.NewTaskDef("seqquick", func(a *core.Args) {
		d := a.I64(0)
		i, j := a.Int(1), a.Int(2)
		seqQuick(d[i : j+1])
	})
	// #pragma css task input(data{i1..j1}, data{i2..j2}) output(dest{k1..k2})
	s.seqmerge = core.NewTaskDef("seqmerge", func(a *core.Args) {
		src := a.I64(0)
		dst := a.I64(1)
		i1, j1 := a.Int(2), a.Int(3)
		i2, j2 := a.Int(4), a.Int(5)
		k1 := a.Int(6)
		seqMerge(src[i1:j1+1], src[i2:j2+1], dst[k1:k1+(j1-i1+1)+(j2-i2+1)])
	})
	// #pragma css task input(src{lo..hi}) output(dst{lo..hi})
	s.seqcopy = core.NewTaskDef("seqcopy", func(a *core.Args) {
		src, dst := a.I64(0), a.I64(1)
		lo, hi := a.Int(2), a.Int(3)
		copy(dst[lo:hi+1], src[lo:hi+1])
	})
	s.sort(0, len(data)-1)
	if err := ctx.Barrier(); err != nil {
		return err
	}
	return s.err
}

// region returns the dependency region for [lo..hi]: the precise
// interval normally, or the whole array in the coarse ablation.
func (s *smpssSorter) region(lo, hi int) core.Region {
	if s.coarse {
		return core.Region{}
	}
	return core.Interval(int64(lo), int64(hi))
}

// sort submits tasks sorting data[lo..hi] inclusive.
//
// The leaf task structure follows Fig. 7 (seqquick leaves, seqmerge
// leaves on array regions), but the merge schedule is bottom-up rather
// than depth-first: all leaf quicksorts are submitted first, then each
// merge level pairs adjacent runs.  The main thread must read sorted
// data to compute merge split points (a WaitOn per pair), and the
// bottom-up order lets workers chew one pair's leaf merges while the
// main thread decomposes the next, instead of blocking on a whole
// subtree at a time.
func (s *smpssSorter) sort(lo, hi int) {
	type run struct{ lo, hi int }
	// Level 0: chunks of at most QuickSize keys, sorted by seqquick
	// tasks, all independent through their disjoint regions.
	var runs []run
	for at := lo; at <= hi; at += s.cfg.QuickSize {
		end := at + s.cfg.QuickSize - 1
		if end > hi {
			end = hi
		}
		runs = append(runs, run{at, end})
		s.submit(s.seqquick,
			core.InOutR(s.data, s.region(at, end)),
			core.Value(at), core.Value(end))
	}
	// Merge levels, alternating data→tmp→data buffers.
	src, dst := s.data, s.tmp
	for len(runs) > 1 {
		var next []run
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				// Odd run out: carry it to the other buffer so the
				// whole level ends up in dst.
				r := runs[i]
				s.copyRun(src, dst, r.lo, r.hi)
				next = append(next, r)
				continue
			}
			a, b := runs[i], runs[i+1]
			s.merge(src, dst, a.lo, a.hi, b.lo, b.hi, a.lo)
			next = append(next, run{a.lo, b.hi})
		}
		runs = next
		src, dst = dst, src
	}
	if len(runs) == 1 && &src[0] != &s.data[0] {
		// The sorted result landed in tmp: copy it back with leaf-sized
		// parallel tasks.
		r := runs[0]
		for at := r.lo; at <= r.hi; at += s.cfg.MergeSize {
			end := at + s.cfg.MergeSize - 1
			if end > r.hi {
				end = r.hi
			}
			s.copyRun(src, s.data, at, end)
		}
	}
}

// copyRun submits a region-to-region copy task.
func (s *smpssSorter) copyRun(src, dst []int64, lo, hi int) {
	destArg := core.OutR(dst, s.region(lo, hi))
	if s.coarse {
		destArg = core.InOut(dst)
	}
	s.submit(s.seqcopy,
		core.InR(src, s.region(lo, hi)),
		destArg,
		core.Value(lo), core.Value(hi))
}

// merge decomposes the merge of src[lo1..hi1] and src[lo2..hi2] into
// dest starting at dlo, submitting leaf seqmerge tasks.
func (s *smpssSorter) merge(src, dest []int64, lo1, hi1, lo2, hi2, dlo int) {
	// The split points require reading sorted source data.
	if err := s.ctx.WaitOnRegion(src, s.region(lo1, hi1)); err != nil {
		return
	}
	if err := s.ctx.WaitOnRegion(src, s.region(lo2, hi2)); err != nil {
		return
	}
	s.mergeRec(src, dest, lo1, hi1, lo2, hi2, dlo)
}

func (s *smpssSorter) mergeRec(src, dest []int64, lo1, hi1, lo2, hi2, dlo int) {
	n1, n2 := hi1-lo1+1, hi2-lo2+1
	if n1 < n2 {
		lo1, hi1, lo2, hi2 = lo2, hi2, lo1, hi1
		n1, n2 = n2, n1
	}
	if n1+n2 <= s.cfg.MergeSize || n1 <= 1 {
		s.submitLeafMerge(src, dest, lo1, hi1, lo2, hi2, dlo)
		return
	}
	mid1 := lo1 + n1/2
	var split2 int
	if n2 > 0 {
		split2 = lo2 + lowerBound(src[lo2:hi2+1], src[mid1])
	} else {
		split2 = lo2
	}
	leftLen := (mid1 - lo1) + (split2 - lo2)
	s.mergeRec(src, dest, lo1, mid1-1, lo2, split2-1, dlo)
	s.mergeRec(src, dest, mid1, hi1, split2, hi2, dlo+leftLen)
}

// submitLeafMerge submits one seqmerge task with region directionality,
// handling empty runs by falling back to a copy-shaped merge (seqMerge
// tolerates empty inputs).
func (s *smpssSorter) submitLeafMerge(src, dest []int64, lo1, hi1, lo2, hi2, dlo int) {
	n := (hi1 - lo1 + 1) + (hi2 - lo2 + 1)
	if n <= 0 {
		return
	}
	destArg := core.OutR(dest, s.region(dlo, dlo+n-1))
	if s.coarse {
		// A whole-array output that is only partially written would be
		// renamed to fresh storage and lose the other runs; declare the
		// honest read-modify-write instead.
		destArg = core.InOut(dest)
	}
	args := []core.Arg{
		core.InR(src, s.region(lo1, hi1)),
		destArg,
		core.Value(lo1), core.Value(hi1),
		core.Value(lo2), core.Value(hi2),
		core.Value(dlo),
	}
	if hi2 >= lo2 {
		// Second source region present.
		args = append(args, core.InR(src, s.region(lo2, hi2)))
	}
	s.submit(s.seqmerge, args...)
}
