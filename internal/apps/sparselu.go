package apps

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/omptask"
)

// SparseLU factors a block-sparse matrix in place (LU without pivoting),
// the classic irregular task workload of the Barcelona tool chain (it
// ships as an SMPSs demo and as a BOTS benchmark).  It exercises exactly
// what §IV's sparse multiplication (Fig. 3) motivates: value-dependent
// task creation — blocks may be absent, and the trailing update allocates
// fill-in blocks on demand from the main flow.
//
// Per step k of the blocked right-looking algorithm:
//
//	lu0(A[k][k])                                 diagonal factorization
//	fwd(A[k][k], A[k][j])   for present j > k    A[k][j] := L(kk)⁻¹·A[k][j]
//	bdiv(A[k][k], A[i][k])  for present i > k    A[i][k] := A[i][k]·U(kk)⁻¹
//	bmod(A[i][k], A[k][j], A[i][j])              A[i][j] −= A[i][k]·A[k][j]
//	                        allocating A[i][j] if it is fill-in
//
// The OpenMP-3.0-tasks version needs a taskwait after each phase of each
// step (the pool has no dependencies); the SMPSs version submits the
// whole factorization and lets the tracker pipeline independent steps.

// GenSparseLU builds an n×n hyper-matrix of m×m blocks where each
// off-diagonal block is present with the given density.  Blocks are made
// diagonally dominant so LU without pivoting is stable; diagonal blocks
// are always present.
func GenSparseLU(n, m int, density float64, seed int64) *hypermatrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	h := hypermatrix.NewSparse(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() >= density {
				continue
			}
			b := h.EnsureBlock(i, j)
			for e := range b {
				b[e] = rng.Float32()*0.2 - 0.1
			}
			if i == j {
				// Strong block-diagonal dominance keeps every pivot of
				// the no-pivoting factorization well away from zero.
				for d := 0; d < m; d++ {
					b[d*m+d] += float32(2*n) + 1
				}
			}
		}
	}
	return h
}

// SparseLUSeq factors h in place sequentially, returning false on a zero
// pivot.  It is the gold reference: the task versions perform the same
// block operations in an order the dependency analysis must prove
// equivalent, so their results must match bit for bit.
func SparseLUSeq(h *hypermatrix.Matrix) bool {
	n, m := h.N, h.M
	for k := 0; k < n; k++ {
		diag := h.Blocks[k][k]
		if diag == nil || !kernels.LUBlock(diag, m) {
			return false
		}
		for j := k + 1; j < n; j++ {
			if h.Blocks[k][j] != nil {
				kernels.TrsmLLUnit(diag, h.Blocks[k][j], m)
			}
		}
		for i := k + 1; i < n; i++ {
			if h.Blocks[i][k] != nil {
				if !kernels.TrsmRU(diag, h.Blocks[i][k], m) {
					return false
				}
			}
		}
		for i := k + 1; i < n; i++ {
			if h.Blocks[i][k] == nil {
				continue
			}
			for j := k + 1; j < n; j++ {
				if h.Blocks[k][j] == nil {
					continue
				}
				kernels.GemmSubNN(h.Blocks[i][k], h.Blocks[k][j], h.EnsureBlock(i, j), m)
			}
		}
	}
	return true
}

// SparseLUSMPSs factors h in place as an SMPSs task program.  Fill-in
// allocation is a main-flow decision exactly like Fig. 3's alloc_block;
// the freshly allocated block is zero, so the first bmod touching it may
// declare it inout without a prior producer.
func SparseLUSMPSs(ctx *core.Context, h *hypermatrix.Matrix) error {
	n, m := h.N, h.M

	lu0 := core.NewHighPriorityTaskDef("lu0", func(a *core.Args) {
		if !kernels.LUBlock(a.F32(0), m) {
			panic("sparselu: zero pivot")
		}
	})
	fwd := core.NewTaskDef("fwd", func(a *core.Args) {
		kernels.TrsmLLUnit(a.F32(0), a.F32(1), m)
	})
	bdiv := core.NewTaskDef("bdiv", func(a *core.Args) {
		if !kernels.TrsmRU(a.F32(0), a.F32(1), m) {
			panic("sparselu: zero pivot in bdiv")
		}
	})
	bmod := core.NewTaskDef("bmod", func(a *core.Args) {
		kernels.GemmSubNN(a.F32(0), a.F32(1), a.F32(2), m)
	})

	sub := &submitter{ctx: ctx}
	for k := 0; k < n; k++ {
		if h.Blocks[k][k] == nil {
			h.EnsureBlock(k, k)
		}
		diag := h.Blocks[k][k]
		sub.submit(lu0, core.InOut(diag))
		for j := k + 1; j < n; j++ {
			if h.Blocks[k][j] != nil {
				sub.submit(fwd, core.In(diag), core.InOut(h.Blocks[k][j]))
			}
		}
		for i := k + 1; i < n; i++ {
			if h.Blocks[i][k] != nil {
				sub.submit(bdiv, core.In(diag), core.InOut(h.Blocks[i][k]))
			}
		}
		for i := k + 1; i < n; i++ {
			if h.Blocks[i][k] == nil {
				continue
			}
			for j := k + 1; j < n; j++ {
				if h.Blocks[k][j] == nil {
					continue
				}
				sub.submit(bmod,
					core.In(h.Blocks[i][k]), core.In(h.Blocks[k][j]),
					core.InOut(h.EnsureBlock(i, j)))
			}
		}
	}
	return sub.finish()
}

// SparseLUOMP3 factors h in place under the task-pool model: without
// dependencies, each phase of each step must end in a taskwait, so
// independent steps never overlap (paper §VII.B).
func SparseLUOMP3(rt *omptask.RT, h *hypermatrix.Matrix) {
	n, m := h.N, h.M
	rt.Parallel(func(c *omptask.Ctx) {
		for k := 0; k < n; k++ {
			diag := h.EnsureBlock(k, k)
			if !kernels.LUBlock(diag, m) {
				panic("sparselu: zero pivot")
			}
			for j := k + 1; j < n; j++ {
				if blk := h.Blocks[k][j]; blk != nil {
					c.Task(func(*omptask.Ctx) { kernels.TrsmLLUnit(diag, blk, m) })
				}
			}
			for i := k + 1; i < n; i++ {
				if blk := h.Blocks[i][k]; blk != nil {
					c.Task(func(*omptask.Ctx) {
						if !kernels.TrsmRU(diag, blk, m) {
							panic("sparselu: zero pivot in bdiv")
						}
					})
				}
			}
			c.Taskwait()
			for i := k + 1; i < n; i++ {
				if h.Blocks[i][k] == nil {
					continue
				}
				for j := k + 1; j < n; j++ {
					if h.Blocks[k][j] == nil {
						continue
					}
					left, right, dst := h.Blocks[i][k], h.Blocks[k][j], h.EnsureBlock(i, j)
					c.Task(func(*omptask.Ctx) { kernels.GemmSubNN(left, right, dst, m) })
				}
			}
			c.Taskwait()
		}
	})
}

// SparseLUVerify dense-multiplies the factors back together and returns
// the maximum absolute difference against the original matrix: with
// L unit-lower and U upper taken from the factored hyper-matrix,
// max |(L·U − A₀)[r][c]|.
func SparseLUVerify(factored *hypermatrix.Matrix, original []float32) float64 {
	dim := factored.N * factored.M
	f := factored.ToFlat()
	l := make([]float32, dim*dim)
	u := make([]float32, dim*dim)
	for r := 0; r < dim; r++ {
		l[r*dim+r] = 1
		for c := 0; c < r; c++ {
			l[r*dim+c] = f[r*dim+c]
		}
		for c := r; c < dim; c++ {
			u[r*dim+c] = f[r*dim+c]
		}
	}
	prod := make([]float32, dim*dim)
	kernels.GemmFlat(l, u, prod, dim)
	var worst float64
	for i := range prod {
		d := float64(prod[i] - original[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
