package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/omptask"
)

// TestSparseLUSeqVerifies checks the sequential factorization against a
// dense L·U re-multiplication.
func TestSparseLUSeqVerifies(t *testing.T) {
	h := GenSparseLU(6, 8, 0.4, 42)
	orig := h.ToFlat()
	if !SparseLUSeq(h) {
		t.Fatal("sequential factorization hit a zero pivot")
	}
	if worst := SparseLUVerify(h, orig); worst > 1e-2 {
		t.Fatalf("‖L·U − A‖∞ = %g", worst)
	}
}

// TestSparseLUSMPSsMatchesSeq is the gold test: the SMPSs factorization
// performs the same block operations in dependency order, so its result
// must equal the sequential one bit for bit.
func TestSparseLUSMPSsMatchesSeq(t *testing.T) {
	for _, density := range []float64{0.15, 0.5, 1.0} {
		ref := GenSparseLU(8, 8, density, 7)
		mine := ref.Clone()
		if !SparseLUSeq(ref) {
			t.Fatal("sequential factorization failed")
		}

		rt := core.New(core.Config{Workers: 8})
		if err := SparseLUSMPSs(rt.Context(), mine); err != nil {
			t.Fatal(err)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}

		got, want := mine.ToFlat(), ref.ToFlat()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("density %.2f: element %d differs: %g vs %g (must be exact)",
					density, i, got[i], want[i])
			}
		}
		// Fill-in decisions must agree too.
		if g, w := mine.NonZeroBlocks(), ref.NonZeroBlocks(); g != w {
			t.Fatalf("density %.2f: fill-in differs: %d vs %d blocks", density, g, w)
		}
	}
}

// TestSparseLUOMP3MatchesSeq: the taskwait-fenced pool version must also
// reproduce the sequential result exactly.
func TestSparseLUOMP3MatchesSeq(t *testing.T) {
	ref := GenSparseLU(7, 8, 0.35, 11)
	mine := ref.Clone()
	if !SparseLUSeq(ref) {
		t.Fatal("sequential factorization failed")
	}
	rt := omptask.New(4)
	SparseLUOMP3(rt, mine)
	rt.Close()
	got, want := mine.ToFlat(), ref.ToFlat()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d differs: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestSparseLUFillIn checks that a sparse input actually produces
// fill-in (otherwise the on-demand allocation path is untested).
func TestSparseLUFillIn(t *testing.T) {
	h := GenSparseLU(10, 4, 0.3, 3)
	before := h.NonZeroBlocks()
	if !SparseLUSeq(h) {
		t.Fatal("factorization failed")
	}
	if after := h.NonZeroBlocks(); after <= before {
		t.Fatalf("no fill-in: %d blocks before, %d after", before, after)
	}
}

// TestSparseLUDense: with density 1 the algorithm degenerates to the
// dense blocked LU; verify numerically against L·U.
func TestSparseLUDense(t *testing.T) {
	h := GenSparseLU(5, 8, 1.0, 19)
	orig := h.ToFlat()
	rt := core.New(core.Config{Workers: 4})
	if err := SparseLUSMPSs(rt.Context(), h); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if worst := SparseLUVerify(h, orig); worst > 1e-2 {
		t.Fatalf("‖L·U − A‖∞ = %g", worst)
	}
}

// TestSparseLUPipelining checks the dependency-aware advantage the app
// exists to show: the SMPSs version must overlap phases that the OMP3
// version fences, which is visible as independent bmod/fwd tasks of
// different steps running without a global order.  We assert it
// structurally: the graph must contain strictly fewer edges than the
// serialization a barrier after every phase would impose... simplest
// robust proxy: some tasks of step k+1 have no path from the last bmod
// of step k, i.e. total true edges < tasks² lower bound of a chain.
func TestSparseLUPipelining(t *testing.T) {
	h := GenSparseLU(8, 4, 0.5, 23)
	rt := core.New(core.Config{Workers: 4})
	if err := SparseLUSMPSs(rt.Context(), h); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.TasksExecuted < 10 {
		t.Fatalf("workload too small: %d tasks", st.TasksExecuted)
	}
	// A fully fenced execution would order every pair of consecutive
	// phases; dependency analysis must find strictly less ordering:
	// fewer edges than a full chain over all tasks would need is too
	// weak, so require average in-degree < 4 (fences give ~#tasks per
	// phase boundary).
	if avg := float64(st.Deps.TrueEdges) / float64(st.TasksExecuted); avg > 6 {
		t.Fatalf("average in-degree %.1f suggests over-serialization", avg)
	}
}
