package apps

import (
	"sync/atomic"

	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/omptask"
)

// The N-Queens benchmark (§VI.E) counts the placements of N queens on an
// N×N board such that no two attack each other.  All versions follow the
// Cilk 5 distribution example: a recursion over board rows trying every
// column.  The task versions keep the last TailLevels levels of the
// recursion inside one sequential task to preserve granularity.

// TailLevels is the minimum number of bottom recursion levels computed by
// one sequential task ("the last 4 levels of recursion are computed by a
// sequential task", §VI.E).
const TailLevels = 4

// maxSpawnDepth bounds how many top levels are decomposed into tasks.
// The paper pins the *tail* at 4 levels on its board sizes; pinning only
// the tail makes the task count grow factorially with the board, and Go
// closures are orders of magnitude heavier than a 2008 Cilk spawn, so
// this reproduction additionally caps the decomposed prefix.  Five
// levels yield thousands of well-sized tasks for any board that takes
// meaningful time (documented as a substitution in DESIGN.md).
const maxSpawnDepth = 4

// spawnDepth returns the recursion depth below which work stays inside
// one sequential task.
func spawnDepth(n int) int {
	d := n - TailLevels
	if d > maxSpawnDepth {
		d = maxSpawnDepth
	}
	if d < 0 {
		d = 0
	}
	return d
}

// queensOK reports whether a queen at (row, col) is compatible with the
// queens already placed in rows 0..row-1 of board.
func queensOK(board []int32, row int, col int32) bool {
	for r := 0; r < row; r++ {
		c := board[r]
		if c == col {
			return false
		}
		if d := int32(row - r); c == col-d || c == col+d {
			return false
		}
	}
	return true
}

// queensCountTail sequentially counts completions of the partial board
// (rows 0..row-1 placed) down to row n.
func queensCountTail(board []int32, row, n int) int64 {
	if row == n {
		return 1
	}
	var total int64
	for col := int32(0); col < int32(n); col++ {
		if queensOK(board, row, col) {
			board[row] = col
			total += queensCountTail(board, row+1, n)
		}
	}
	return total
}

// NQueensSeq counts solutions with the plain sequential recursion, using
// a single solution array with no copies — the paper's point that "a
// sequential version should not contain artifacts necessary for a
// parallel paradigm" (§VI.E).
func NQueensSeq(n int) int64 {
	board := make([]int32, n)
	return queensCountTail(board, 0, n)
}

// ---------------------------------------------------------------------
// Cilk version: "totally recursive and does not make any depth
// distinction" (§VI.E).  Every spawned branch must allocate a copy of
// the partial solution array so siblings do not overwrite each other —
// the artifact SMPSs renaming makes unnecessary.

// NQueensCilk counts solutions on a Cilk-style runtime.
func NQueensCilk(rt *cilkrt.RT, n int) int64 {
	var total atomic.Int64
	rt.Run(func(c *cilkrt.Ctx) {
		board := make([]int32, n)
		cilkQueens(c, board, 0, n, &total)
	})
	return total.Load()
}

func cilkQueens(c *cilkrt.Ctx, board []int32, row, n int, total *atomic.Int64) {
	if row >= spawnDepth(n) {
		total.Add(queensCountTail(board, row, n))
		return
	}
	for col := int32(0); col < int32(n); col++ {
		if queensOK(board, row, col) {
			// Per-task copy of the partial solution (§VI.E: "at each
			// nested task entrance ... allocating a copy of the partial
			// solution array").
			child := make([]int32, n)
			copy(child, board[:row])
			child[row] = col
			c.Spawn(func(c *cilkrt.Ctx) { cilkQueens(c, child, row+1, n, total) })
		}
	}
	c.Sync()
}

// ---------------------------------------------------------------------
// OpenMP 3.0 tasks version: tasks down to the last TailLevels levels,
// then one sequential tail task; hand-made array copies at every task.

// NQueensOMP counts solutions on the OpenMP-tasks-style runtime.
func NQueensOMP(rt *omptask.RT, n int) int64 {
	var total atomic.Int64
	rt.Parallel(func(c *omptask.Ctx) {
		board := make([]int32, n)
		ompQueens(c, board, 0, n, &total)
	})
	return total.Load()
}

func ompQueens(c *omptask.Ctx, board []int32, row, n int, total *atomic.Int64) {
	if row >= spawnDepth(n) {
		total.Add(queensCountTail(board, row, n))
		return
	}
	for col := int32(0); col < int32(n); col++ {
		if queensOK(board, row, col) {
			child := make([]int32, n)
			copy(child, board[:row])
			child[row] = col
			c.Task(func(c *omptask.Ctx) { ompQueens(c, child, row+1, n, total) })
		}
	}
	c.Taskwait()
}

// ---------------------------------------------------------------------
// SMPSs version (§VI.E): the recursion down to the last TailLevels
// levels runs on the main thread; the bottom levels are sequential
// tasks.  The partial solution array is a single tracked object: each
// placement is a tiny inout task and each tail search reads the array.
// "SMPSs does not require duplicating the partial solution array by
// hand.  The runtime takes care of it by renaming the array as needed" —
// a placement over an array that pending tail tasks are still reading
// gets a renamed instance automatically, so all branches proceed in
// parallel from one program-level array.
//
// The main thread prunes with its own shadow of the placements (it may
// not read the tracked array without a barrier); the shadow holds
// exactly the values the tracked version chain carries on this path.

// NQueensSMPSs counts solutions on the SMPSs runtime.
func NQueensSMPSs(ctx *core.Context, n int) (int64, error) {
	board := make([]int32, n)  // tracked object flowing through tasks
	shadow := make([]int32, n) // main-thread pruning mirror

	place := core.NewTaskDef("queens_place", func(a *core.Args) {
		b := a.I32(0)
		b[a.Int(1)] = int32(a.Int(2))
	})
	tail := core.NewTaskDef("queens_tail", func(a *core.Args) {
		b := a.I32(0)
		row := a.Int(2)
		// The tail works on its own stack copy: the In parameter is
		// read-only.
		local := make([]int32, len(b))
		copy(local, b[:row])
		a.I64(1)[0] = queensCountTail(local, row, len(b))
	})

	sub := &submitter{ctx: ctx}
	var cells [][]int64
	var explore func(row int)
	explore = func(row int) {
		if row >= spawnDepth(n) {
			cell := make([]int64, 1)
			cells = append(cells, cell)
			sub.submit(tail, core.In(board), core.Out(cell), core.Value(row))
			return
		}
		for col := int32(0); col < int32(n); col++ {
			if queensOK(shadow, row, col) {
				shadow[row] = col
				sub.submit(place, core.InOut(board), core.Value(row), core.Value(int(col)))
				explore(row + 1)
			}
		}
	}
	explore(0)
	if err := ctx.Barrier(); err != nil {
		return 0, err
	}
	if sub.err != nil {
		return 0, sub.err
	}
	var total int64
	for _, c := range cells {
		total += c[0]
	}
	return total, nil
}
