package apps

import (
	"repro/internal/core"
	"repro/internal/hypermatrix"
)

// Heat diffusion on a blocked 2-D grid — the stencil demo that ships with
// the SMPSs distribution.  The Gauss-Seidel solver updates the grid in
// place, which makes the sweep a wavefront: block (i,j) needs the
// already-updated values of its north and west neighbours from the
// *current* sweep and the old values of its south and east neighbours
// from the *previous* one.  Declaring the block inout and the four
// neighbours in reproduces that wavefront automatically, and — because
// the next sweep's update of an east/south neighbour renames rather than
// waits for its readers — consecutive sweeps pipeline diagonally across
// the grid, parallelism no barrier-based model can express (§VII.B).
//
// The grid is stored as a dense hypermatrix.Matrix of m×m blocks.
// Boundary conditions are fixed temperatures on the four outer edges.

// HeatBC fixes the temperature outside each edge of the grid.
type HeatBC struct {
	Top, Bottom, Left, Right float32
}

// heatGSBlock performs one in-place Gauss-Seidel sweep over one m×m
// block.  Nil neighbours are outside the grid and read the boundary
// temperature instead.
func heatGSBlock(self, up, down, left, right []float32, m int, bc HeatBC) {
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var n, s, w, e float32
			if i > 0 {
				n = self[(i-1)*m+j]
			} else if up != nil {
				n = up[(m-1)*m+j]
			} else {
				n = bc.Top
			}
			if i < m-1 {
				s = self[(i+1)*m+j]
			} else if down != nil {
				s = down[j]
			} else {
				s = bc.Bottom
			}
			if j > 0 {
				w = self[i*m+j-1]
			} else if left != nil {
				w = left[i*m+m-1]
			} else {
				w = bc.Left
			}
			if j < m-1 {
				e = self[i*m+j+1]
			} else if right != nil {
				e = right[i*m]
			} else {
				e = bc.Right
			}
			self[i*m+j] = 0.25 * (n + s + w + e)
		}
	}
}

// heatJacobiBlock computes one Jacobi sweep of one block: dst is written
// from the previous-sweep values in src and its neighbours.
func heatJacobiBlock(dst, src, up, down, left, right []float32, m int, bc HeatBC) {
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var n, s, w, e float32
			if i > 0 {
				n = src[(i-1)*m+j]
			} else if up != nil {
				n = up[(m-1)*m+j]
			} else {
				n = bc.Top
			}
			if i < m-1 {
				s = src[(i+1)*m+j]
			} else if down != nil {
				s = down[j]
			} else {
				s = bc.Bottom
			}
			if j > 0 {
				w = src[i*m+j-1]
			} else if left != nil {
				w = left[i*m+m-1]
			} else {
				w = bc.Left
			}
			if j < m-1 {
				e = src[i*m+j+1]
			} else if right != nil {
				e = right[i*m]
			} else {
				e = bc.Right
			}
			dst[i*m+j] = 0.25 * (n + s + w + e)
		}
	}
}

// neighbours returns the four adjacent blocks of (i, j), nil outside the
// grid.
func neighbours(h *hypermatrix.Matrix, i, j int) (up, down, left, right []float32) {
	if i > 0 {
		up = h.Blocks[i-1][j]
	}
	if i < h.N-1 {
		down = h.Blocks[i+1][j]
	}
	if j > 0 {
		left = h.Blocks[i][j-1]
	}
	if j < h.N-1 {
		right = h.Blocks[i][j+1]
	}
	return
}

// HeatSeqGS runs sweeps in-place Gauss-Seidel sweeps sequentially in
// block-raster order.  For the four-point stencil this computes exactly
// the same values as an element-raster sweep over the flat grid (every
// neighbour is read in the same updated/old state), which
// TestHeatBlockedMatchesFlat asserts bit for bit.
func HeatSeqGS(h *hypermatrix.Matrix, bc HeatBC, sweeps int) {
	for s := 0; s < sweeps; s++ {
		for i := 0; i < h.N; i++ {
			for j := 0; j < h.N; j++ {
				up, down, left, right := neighbours(h, i, j)
				heatGSBlock(h.Blocks[i][j], up, down, left, right, h.M, bc)
			}
		}
	}
}

// HeatSMPSsGS runs the same sweeps as an SMPSs task program: one task per
// block per sweep, inout on the block, in on the four neighbours.  The
// dependency tracker derives the wavefront; renaming lets sweep s+1 start
// in the top-left corner while sweep s is still finishing in the
// bottom-right.
func HeatSMPSsGS(ctx *core.Context, h *hypermatrix.Matrix, bc HeatBC, sweeps int) error {
	m := h.M
	gs := core.NewTaskDef("heat_gs", func(a *core.Args) {
		get := func(i int) []float32 {
			if a.Value(i) == nil {
				return nil
			}
			return a.F32(i + 6)
		}
		heatGSBlock(a.F32(5), get(0), get(1), get(2), get(3), m, bc)
	})
	sub := &submitter{ctx: ctx}
	for s := 0; s < sweeps; s++ {
		for i := 0; i < h.N; i++ {
			for j := 0; j < h.N; j++ {
				up, down, left, right := neighbours(h, i, j)
				// Parameter layout: four presence flags + one pad value,
				// then the data arguments (self + present neighbours in
				// fixed order).  Absent neighbours pass the self block as
				// a harmless placeholder so indices stay fixed.
				args := make([]core.Arg, 0, 10)
				for _, nb := range [][]float32{up, down, left, right} {
					if nb == nil {
						args = append(args, core.Value(nil))
					} else {
						args = append(args, core.Value(1))
					}
				}
				args = append(args, core.Value(0)) // pad: data starts at 5
				args = append(args, core.InOut(h.Blocks[i][j]))
				for _, nb := range [][]float32{up, down, left, right} {
					if nb == nil {
						nb = h.Blocks[i][j] // placeholder, never read
					}
					args = append(args, core.In(nb))
				}
				sub.submit(gs, args...)
			}
		}
	}
	return sub.finish()
}

// HeatSeqJacobi runs sweeps Jacobi sweeps sequentially, double-buffering
// between h and a scratch grid, and returns the grid holding the result.
func HeatSeqJacobi(h *hypermatrix.Matrix, bc HeatBC, sweeps int) *hypermatrix.Matrix {
	cur, next := h, hypermatrix.New(h.N, h.M)
	for s := 0; s < sweeps; s++ {
		for i := 0; i < cur.N; i++ {
			for j := 0; j < cur.N; j++ {
				up, down, left, right := neighbours(cur, i, j)
				heatJacobiBlock(next.Blocks[i][j], cur.Blocks[i][j], up, down, left, right, cur.M, bc)
			}
		}
		cur, next = next, cur
	}
	return cur
}

// HeatSMPSsJacobi is the task version of the Jacobi solver; the explicit
// double-buffering makes every sweep embarrassingly parallel, at the cost
// of the slower convergence Jacobi is known for.  Returns the grid
// holding the result (valid after a barrier).
func HeatSMPSsJacobi(ctx *core.Context, h *hypermatrix.Matrix, bc HeatBC, sweeps int) (*hypermatrix.Matrix, error) {
	m := h.M
	jac := core.NewTaskDef("heat_jacobi", func(a *core.Args) {
		get := func(i int) []float32 {
			if a.Value(i) == nil {
				return nil
			}
			return a.F32(i + 7)
		}
		heatJacobiBlock(a.F32(5), a.F32(6), get(0), get(1), get(2), get(3), m, bc)
	})
	cur, next := h, hypermatrix.New(h.N, h.M)
	sub := &submitter{ctx: ctx}
	for s := 0; s < sweeps; s++ {
		for i := 0; i < cur.N; i++ {
			for j := 0; j < cur.N; j++ {
				up, down, left, right := neighbours(cur, i, j)
				args := make([]core.Arg, 0, 11)
				for _, nb := range [][]float32{up, down, left, right} {
					if nb == nil {
						args = append(args, core.Value(nil))
					} else {
						args = append(args, core.Value(1))
					}
				}
				args = append(args, core.Value(0)) // pad: data starts at 5
				args = append(args, core.Out(next.Blocks[i][j]), core.In(cur.Blocks[i][j]))
				for _, nb := range [][]float32{up, down, left, right} {
					if nb == nil {
						nb = cur.Blocks[i][j]
					}
					args = append(args, core.In(nb))
				}
				sub.submit(jac, args...)
			}
		}
		cur, next = next, cur
	}
	return cur, sub.finish()
}

// HeatResidual returns the maximum absolute 4-point stencil residual
// |u − 0.25·(n+s+w+e)| over the grid, a convergence measure.
func HeatResidual(h *hypermatrix.Matrix, bc HeatBC) float64 {
	dim := h.N * h.M
	at := func(r, c int) float32 {
		switch {
		case r < 0:
			return bc.Top
		case r >= dim:
			return bc.Bottom
		case c < 0:
			return bc.Left
		case c >= dim:
			return bc.Right
		}
		return h.At(r, c)
	}
	var worst float64
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			res := float64(h.At(r, c)) - 0.25*float64(at(r-1, c)+at(r+1, c)+at(r, c-1)+at(r, c+1))
			if res < 0 {
				res = -res
			}
			if res > worst {
				worst = res
			}
		}
	}
	return worst
}

// HeatGSFlat runs sweeps in-place Gauss-Seidel sweeps in element-raster
// order over a flat dim×dim grid — the unblocked reference for the
// exact-equivalence test of the blocked sweep.
func HeatGSFlat(u []float32, dim int, bc HeatBC, sweeps int) {
	at := func(r, c int) float32 {
		switch {
		case r < 0:
			return bc.Top
		case r >= dim:
			return bc.Bottom
		case c < 0:
			return bc.Left
		case c >= dim:
			return bc.Right
		}
		return u[r*dim+c]
	}
	for s := 0; s < sweeps; s++ {
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				u[r*dim+c] = 0.25 * (at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1))
			}
		}
	}
}
