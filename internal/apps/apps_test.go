package apps

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/omptask"
)

var smallSort = SortConfig{QuickSize: 64, MergeSize: 64}

func randKeys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	return keys
}

func isSorted(keys []int64) bool {
	return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

func sameMultiset(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	ca := append([]int64(nil), a...)
	cb := append([]int64(nil), b...)
	sort.Slice(ca, func(i, j int) bool { return ca[i] < ca[j] })
	sort.Slice(cb, func(i, j int) bool { return cb[i] < cb[j] })
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func TestSeqQuickSortsAnything(t *testing.T) {
	f := func(raw []int64) bool {
		data := append([]int64(nil), raw...)
		seqQuick(data)
		return isSorted(data) && sameMultiset(raw, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqMerge(t *testing.T) {
	a := []int64{1, 3, 5}
	b := []int64{2, 3, 6, 9}
	dest := make([]int64, 7)
	seqMerge(a, b, dest)
	want := []int64{1, 2, 3, 3, 5, 6, 9}
	for i := range want {
		if dest[i] != want[i] {
			t.Fatalf("dest = %v, want %v", dest, want)
		}
	}
	// Empty inputs.
	seqMerge(nil, b, dest[:4])
	if dest[0] != 2 || dest[3] != 9 {
		t.Fatalf("merge with empty first run broken: %v", dest[:4])
	}
	seqMerge(a, nil, dest[:3])
	if dest[0] != 1 || dest[2] != 5 {
		t.Fatalf("merge with empty second run broken: %v", dest[:3])
	}
}

func TestMultisortSeq(t *testing.T) {
	orig := randKeys(10000, 1)
	data := append([]int64(nil), orig...)
	MultisortSeq(data, smallSort)
	if !isSorted(data) || !sameMultiset(orig, data) {
		t.Fatalf("sequential multisort failed")
	}
}

func TestMultisortCilk(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rt := cilkrt.New(workers)
		orig := randKeys(20000, 2)
		data := append([]int64(nil), orig...)
		MultisortCilk(rt, data, smallSort)
		rt.Close()
		if !isSorted(data) || !sameMultiset(orig, data) {
			t.Fatalf("workers=%d: cilk multisort failed", workers)
		}
	}
}

func TestMultisortOMP(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rt := omptask.New(workers)
		orig := randKeys(20000, 3)
		data := append([]int64(nil), orig...)
		MultisortOMP(rt, data, smallSort)
		rt.Close()
		if !isSorted(data) || !sameMultiset(orig, data) {
			t.Fatalf("workers=%d: omp multisort failed", workers)
		}
	}
}

func TestMultisortSMPSs(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		rt := core.New(core.Config{Workers: workers})
		orig := randKeys(20000, 4)
		data := append([]int64(nil), orig...)
		if err := MultisortSMPSs(rt.Context(), data, smallSort); err != nil {
			t.Fatal(err)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if !isSorted(data) || !sameMultiset(orig, data) {
			t.Fatalf("workers=%d: SMPSs multisort failed", workers)
		}
	}
}

func TestMultisortSMPSsCoarse(t *testing.T) {
	// The regions-off ablation must still sort correctly — just without
	// parallelism between overlapping pieces.
	for _, workers := range []int{1, 4} {
		rt := core.New(core.Config{Workers: workers})
		orig := randKeys(5000, 14)
		data := append([]int64(nil), orig...)
		if err := MultisortSMPSsCoarse(rt.Context(), data, smallSort); err != nil {
			t.Fatal(err)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if !isSorted(data) || !sameMultiset(orig, data) {
			t.Fatalf("workers=%d: coarse SMPSs multisort failed", workers)
		}
	}
}

func TestMultisortSMPSsSmallInput(t *testing.T) {
	// Input below QuickSize: a single seqquick task.
	rt := core.New(core.Config{Workers: 2})
	orig := randKeys(50, 5)
	data := append([]int64(nil), orig...)
	if err := MultisortSMPSs(rt.Context(), data, smallSort); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if !isSorted(data) || !sameMultiset(orig, data) {
		t.Fatalf("small-input multisort failed")
	}
}

func TestMultisortAgreementProperty(t *testing.T) {
	// Property: all four implementations produce the same sorted array.
	f := func(seed int64, rawN uint16) bool {
		n := int(rawN%4000) + 100
		orig := randKeys(n, seed)
		want := append([]int64(nil), orig...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		seq := append([]int64(nil), orig...)
		MultisortSeq(seq, smallSort)

		crt := cilkrt.New(4)
		ck := append([]int64(nil), orig...)
		MultisortCilk(crt, ck, smallSort)
		crt.Close()

		ort := omptask.New(4)
		om := append([]int64(nil), orig...)
		MultisortOMP(ort, om, smallSort)
		ort.Close()

		srt := core.New(core.Config{Workers: 4})
		sm := append([]int64(nil), orig...)
		if err := MultisortSMPSs(srt.Context(), sm, smallSort); err != nil {
			return false
		}
		srt.Close()

		for i := range want {
			if seq[i] != want[i] || ck[i] != want[i] || om[i] != want[i] || sm[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Known N-Queens solution counts.
var queensCounts = map[int]int64{
	4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724, 11: 2680, 12: 14200,
}

func TestNQueensSeq(t *testing.T) {
	for n, want := range queensCounts {
		if n > 10 {
			continue
		}
		if got := NQueensSeq(n); got != want {
			t.Fatalf("NQueensSeq(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNQueensCilk(t *testing.T) {
	for _, workers := range []int{1, 8} {
		rt := cilkrt.New(workers)
		if got := NQueensCilk(rt, 9); got != 352 {
			t.Fatalf("workers=%d: NQueensCilk(9) = %d, want 352", workers, got)
		}
		rt.Close()
	}
}

func TestNQueensOMP(t *testing.T) {
	for _, workers := range []int{1, 8} {
		rt := omptask.New(workers)
		if got := NQueensOMP(rt, 9); got != 352 {
			t.Fatalf("workers=%d: NQueensOMP(9) = %d, want 352", workers, got)
		}
		rt.Close()
	}
}

func TestNQueensSMPSs(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		rt := core.New(core.Config{Workers: workers})
		got, err := NQueensSMPSs(rt.Context(), 9)
		if err != nil {
			t.Fatal(err)
		}
		if got != 352 {
			t.Fatalf("workers=%d: NQueensSMPSs(9) = %d, want 352", workers, got)
		}
		if workers > 1 {
			if st := rt.Stats(); st.Deps.Renames == 0 {
				t.Logf("note: no renames observed (timing-dependent)")
			}
		}
		rt.Close()
	}
}

func TestNQueensSMPSsLargerBoard(t *testing.T) {
	rt := core.New(core.Config{Workers: 8})
	defer rt.Close()
	got, err := NQueensSMPSs(rt.Context(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2680 {
		t.Fatalf("NQueensSMPSs(11) = %d, want 2680", got)
	}
}

func TestNQueensSmallBoards(t *testing.T) {
	// Boards with n ≤ TailLevels exercise the degenerate path where the
	// root immediately becomes one tail task.
	rt := core.New(core.Config{Workers: 2})
	defer rt.Close()
	got, err := NQueensSMPSs(rt.Context(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("NQueensSMPSs(4) = %d, want 2", got)
	}
}

func TestAllModelsAgreeOnQueens(t *testing.T) {
	n := 10
	want := queensCounts[n]
	crt := cilkrt.New(4)
	ort := omptask.New(4)
	srt := core.New(core.Config{Workers: 4})
	defer crt.Close()
	defer ort.Close()
	defer srt.Close()
	if got := NQueensCilk(crt, n); got != want {
		t.Fatalf("cilk: %d, want %d", got, want)
	}
	if got := NQueensOMP(ort, n); got != want {
		t.Fatalf("omp: %d, want %d", got, want)
	}
	got, err := NQueensSMPSs(srt.Context(), n)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("smpss: %d, want %d", got, want)
	}
}

func TestInsertionSortEdgeCases(t *testing.T) {
	for _, data := range [][]int64{{}, {1}, {2, 1}, {3, 3, 3}, {5, 4, 3, 2, 1}} {
		d := append([]int64(nil), data...)
		insertionSort(d)
		if !isSorted(d) || !sameMultiset(data, d) {
			t.Fatalf("insertionSort(%v) = %v", data, d)
		}
	}
}

func TestLowerBound(t *testing.T) {
	r := []int64{2, 4, 4, 8}
	cases := map[int64]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 3, 8: 3, 9: 4}
	for v, want := range cases {
		if got := lowerBound(r, v); got != want {
			t.Fatalf("lowerBound(%v, %d) = %d, want %d", r, v, got, want)
		}
	}
}
