package apps

import "repro/internal/core"

// submitter is the apps' sticky submission wrapper: it forwards to
// Context.Submit until the first refusal and latches that error.  A
// context refuses a submission only when it is closed or canceled, and
// once it does every later submission fails identically — so skipping
// the rest is equivalent to submitting them, and the driver loop stays
// free of per-site error plumbing while still surfacing the refusal
// instead of silently no-oping the remaining task graph.
type submitter struct {
	ctx *core.Context
	err error
}

func (s *submitter) submit(def *core.TaskDef, args ...core.Arg) {
	if s.err == nil {
		s.err = s.ctx.Submit(def, args...)
	}
}

// finish reports how the submission phase ended: the first refusal if
// any, else the context's own first task failure.
func (s *submitter) finish() error {
	if s.err != nil {
		return s.err
	}
	return s.ctx.Err()
}
