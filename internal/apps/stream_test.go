package apps

import (
	"testing"

	"repro/internal/core"
)

// TestStreamMatchesSeq is the gold test: same shared temporary, same
// arithmetic, bit-identical results.
func TestStreamMatchesSeq(t *testing.T) {
	const nb, m, iters = 16, 32, 5
	ref := NewStreamVectors(nb, m)
	StreamSeq(ref, 0.5, iters)

	mine := NewStreamVectors(nb, m)
	rt := core.New(core.Config{Workers: 8})
	if err := StreamSMPSs(rt.Context(), mine, 0.5, iters); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for blk := range ref.C {
		for j := range ref.C[blk] {
			if mine.C[blk][j] != ref.C[blk][j] {
				t.Fatalf("block %d element %d: %g vs %g", blk, j, mine.C[blk][j], ref.C[blk][j])
			}
		}
	}
}

// TestStreamRenamesTheTemporary checks the §II mechanism: every add
// after the first must rename the shared temporary, and no false edge
// may appear.
func TestStreamRenamesTheTemporary(t *testing.T) {
	const nb, m, iters = 8, 16, 3
	v := NewStreamVectors(nb, m)
	// One worker: nothing executes while the graph is built, so every
	// add after the first deterministically finds its predecessor's
	// axpy reader still pending and must rename.
	rt := core.New(core.Config{Workers: 1})
	if err := StreamSMPSs(rt.Context(), v, 2, iters); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if want := int64(nb*iters - 1); st.Deps.Renames != want {
		t.Fatalf("got %d renames for %d temp writes, want exactly %d", st.Deps.Renames, nb*iters, want)
	}
	if st.Deps.FalseEdges != 0 {
		t.Fatalf("%d false edges materialized despite renaming", st.Deps.FalseEdges)
	}
}

// TestStreamWithoutRenamingSerializes: disabling renaming must still be
// correct but must materialize the WAR chains on the temporary.
func TestStreamWithoutRenamingSerializes(t *testing.T) {
	const nb, m, iters = 8, 16, 2
	ref := NewStreamVectors(nb, m)
	StreamSeq(ref, 1.5, iters)

	v := NewStreamVectors(nb, m)
	rt := core.New(core.Config{Workers: 4, DisableRenaming: true})
	if err := StreamSMPSs(rt.Context(), v, 1.5, iters); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Deps.Renames != 0 {
		t.Fatalf("renaming disabled but %d renames happened", st.Deps.Renames)
	}
	if st.Deps.FalseEdges == 0 {
		t.Fatal("no false edges: the shared temporary should serialize")
	}
	for blk := range ref.C {
		for j := range ref.C[blk] {
			if v.C[blk][j] != ref.C[blk][j] {
				t.Fatalf("block %d element %d: %g vs %g", blk, j, v.C[blk][j], ref.C[blk][j])
			}
		}
	}
}
