package repro_test

// Chaos stress: the seeded fault-injection harness (internal/chaos)
// aimed at the multi-tenant pool.  The tests here are the acceptance
// gate for the failure-domain work: with faults injected into some
// tenants of a shared pool, the unfaulted tenants must stay
// bit-identical to the sequential interpreter, every faulted tenant's
// failure must surface as a typed error at ITS drain point and nowhere
// else, renamed storage must fully drain, and Pool.Drain + Close must
// complete without wedging.  CI runs this file under -race with
// GOMAXPROCS=4 and -count=2 (the second run proves injectors uninstall
// cleanly).
//
// Determinism: every injector decision is a pure hash of (seed, site,
// key), so a given seed faults the same tasks on every run regardless
// of worker interleaving — which is why the tests can assert that the
// targeted tenants DID fail, not just that they may have.

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cellss"
	"repro/internal/chaos"
	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/forkjoin"
	"repro/internal/omptask"
	"repro/internal/supermatrix"
)

// TestChaosMachineryFaultsKeepEveryTenantExact arms only the
// correctness-neutral machinery sites — steal-path delays, dropped
// affinity wakes, simulated rename-storage exhaustion — and runs all
// six programming models concurrently on one shared pool.  The faults
// widen every timing window the scheduler has (the wake-drop site in
// particular forces the generic unpark fallback to cover for the
// affinity wake), yet every tenant must still reproduce the sequential
// interpreter bit for bit.
func TestChaosMachineryFaultsKeepEveryTenantExact(t *testing.T) {
	chaos.Install(chaos.New(chaos.Config{
		Seed: 0xC0FFEE,
		Rates: map[chaos.Site]float64{
			chaos.SiteStealDelay:    0.2,
			chaos.SiteWakeDrop:      0.4,
			chaos.SiteRenameExhaust: 0.5,
		},
		Delay: 50 * time.Microsecond,
	}))
	defer chaos.Uninstall()

	pool, err := core.NewPool(core.PoolConfig{Workers: 8, MaxContexts: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, tn := range equivTenants {
		ops := genEquivProgram(int64(100 + i))
		want := runSequential(ops)
		wg.Add(1)
		go func(tn equivTenant, ops []equivOp, want [][]float32) {
			defer wg.Done()
			got, err := tn.run(pool, ops)
			if err != nil {
				t.Errorf("%s: %v", tn.name, err)
				return
			}
			if d := equivDiff(got, want); d != "" {
				t.Errorf("%s: %s", tn.name, d)
			}
		}(tn, ops, want)
	}
	wg.Wait()
	if t.Failed() {
		return // a failed tenant may have left its context attached
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosFaultedTenantsStayIsolated is the failure-domain stress: six
// SMPSs tenants share one pool, and the injector is aimed at the first
// three — injected panics, injected Args.Fail-style errors and body
// delays, with FailPoison skipping the dependents of every failed
// task.  Each targeted tenant must observe a *core.TaskError carrying
// its own context id at its Barrier; each untargeted tenant must stay
// bit-identical to sequential with zero failure counters.  Afterwards
// Pool.Drain must complete (voluntary path: everyone already closed).
func TestChaosFaultedTenantsStayIsolated(t *testing.T) {
	const tenants, faulted = 6, 3

	pool, err := core.NewPool(core.PoolConfig{Workers: 8, MaxContexts: tenants})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]*core.Context, tenants)
	targets := make(map[int]bool)
	for i := range ctxs {
		ctx, err := pool.NewContext(core.ContextConfig{OnFailure: core.FailPoison})
		if err != nil {
			t.Fatal(err)
		}
		ctxs[i] = ctx
		if i < faulted {
			targets[ctx.ID()] = true
		}
	}
	chaos.Install(chaos.New(chaos.Config{
		Seed: 7,
		Rates: map[chaos.Site]float64{
			chaos.SiteTaskPanic: 0.04,
			chaos.SiteTaskError: 0.04,
			chaos.SiteTaskDelay: 0.10,
		},
		Delay: 20 * time.Microsecond,
		Ctxs:  targets,
	}))
	defer chaos.Uninstall()

	var wg sync.WaitGroup
	for i, ctx := range ctxs {
		ops := genEquivProgram(int64(200 + i))
		want := runSequential(ops)
		wg.Add(1)
		go func(i int, ctx *core.Context, ops []equivOp, want [][]float32) {
			defer wg.Done()
			bufs := freshBuffers()
			if err := equivSubmitCore(ctx, ops, bufs); err != nil {
				t.Errorf("tenant %d: submit: %v", i, err)
				return
			}
			err := ctx.Barrier()
			st := ctx.Stats()
			if i < faulted {
				var te *core.TaskError
				if !errors.As(err, &te) {
					t.Errorf("faulted tenant %d: Barrier returned %v, want a *core.TaskError", i, err)
					return
				}
				if te.Ctx != ctx.ID() {
					t.Errorf("faulted tenant %d: TaskError carries ctx %d, want %d", i, te.Ctx, ctx.ID())
				}
				if st.Failures == 0 {
					t.Errorf("faulted tenant %d: Stats.Failures == 0 after a TaskError", i)
				}
			} else {
				if err != nil {
					t.Errorf("clean tenant %d: Barrier: %v", i, err)
					return
				}
				if st.Failures != 0 || st.Poisoned != 0 || st.Canceled != 0 {
					t.Errorf("clean tenant %d: failure counters bled in: %+v", i, st)
				}
				if d := equivDiff(bufs, want); d != "" {
					t.Errorf("clean tenant %d: %s", i, d)
				}
			}
			// Failure-domain invariants that hold for everyone: every
			// submitted task was either executed or skipped-and-counted,
			// and the skips still drained the pooled rename storage.
			if st.TasksExecuted+st.Poisoned+st.Canceled != st.TasksSubmitted {
				t.Errorf("tenant %d: executed %d + poisoned %d + canceled %d != submitted %d",
					i, st.TasksExecuted, st.Poisoned, st.Canceled, st.TasksSubmitted)
			}
			if st.LiveRenamedBytes != 0 {
				t.Errorf("tenant %d: %d renamed bytes live after drain", i, st.LiveRenamedBytes)
			}
			ctx.Close()
		}(i, ctx, ops, want)
	}
	wg.Wait()
	if err := pool.Drain(time.Second); err != nil {
		t.Fatalf("Drain after all tenants closed: %v", err)
	}
}

// TestChaosDrainForcesFaultedStragglers submits slow, fault-delayed
// serial chains on every tenant and then drains the pool out from
// under them: Drain's deadline expires, the stragglers are canceled,
// and each blocked Barrier must return a typed CanceledError (reason
// "drain") rather than wedge.  Machinery faults stay armed throughout
// so the cancel path itself runs under dropped wakes and steal delays.
func TestChaosDrainForcesFaultedStragglers(t *testing.T) {
	const tenants = 3

	pool, err := core.NewPool(core.PoolConfig{Workers: 4, MaxContexts: tenants})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]*core.Context, tenants)
	targets := make(map[int]bool)
	for i := range ctxs {
		ctx, err := pool.NewContext(core.ContextConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ctxs[i] = ctx
		targets[ctx.ID()] = true
	}
	chaos.Install(chaos.New(chaos.Config{
		Seed: 11,
		Rates: map[chaos.Site]float64{
			chaos.SiteTaskDelay:  1.0,
			chaos.SiteStealDelay: 0.2,
			chaos.SiteWakeDrop:   0.5,
		},
		Delay: time.Millisecond,
		Ctxs:  targets,
	}))
	defer chaos.Uninstall()

	slow := core.NewTaskDef("chaos_slow", func(a *core.Args) {
		x := a.F32(0)
		x[0]++
	})
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i, ctx := range ctxs {
		wg.Add(1)
		go func(i int, ctx *core.Context) {
			defer wg.Done()
			// A serial chain (every task InOut on one buffer) that would
			// take ~300ms of injected delay if left alone.
			x := make([]float32, 4)
			for k := 0; k < 300; k++ {
				if err := ctx.Submit(slow, core.InOut(x)); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = ctx.Barrier()
		}(i, ctx)
	}
	time.Sleep(5 * time.Millisecond) // let the chains get going
	if err := pool.Drain(10 * time.Millisecond); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		var ce *core.CanceledError
		if !errors.As(err, &ce) {
			t.Errorf("tenant %d: Barrier returned %v, want a *core.CanceledError", i, err)
			continue
		}
		if ce.Reason != "drain" {
			t.Errorf("tenant %d: canceled for %q, want \"drain\"", i, ce.Reason)
		}
		if !ctxs[i].Closed() {
			t.Errorf("tenant %d: context not closed after forced drain", i)
		}
		if st := ctxs[i].Stats(); st.LiveRenamedBytes != 0 {
			t.Errorf("tenant %d: %d renamed bytes live after forced drain", i, st.LiveRenamedBytes)
		}
	}
	if _, err := pool.NewContext(core.ContextConfig{}); err == nil {
		t.Error("NewContext succeeded on a drained pool")
	}
}

// TestChaosModelPanicIsolation plants one deliberately panicking task
// inside each hosted programming model — CellSs, SuperMatrix, OpenMP
// tasks, Cilk and fork-join — all tenants of ONE shared pool, alongside
// an unfaulted SMPSs co-tenant.  Each model's failure must surface as a
// non-nil error at that model's own drain point (Barrier/Execute/Close)
// carrying the panic payload, and the co-tenant must stay bit-identical
// to the sequential interpreter.
func TestChaosModelPanicIsolation(t *testing.T) {
	const kaput = "model-kaput"

	pool, err := core.NewPool(core.PoolConfig{Workers: 8, MaxContexts: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	fail := func(name string, f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := f()
			if err == nil {
				t.Errorf("%s: panicking task did not surface at drain", name)
				return
			}
			if !strings.Contains(err.Error(), kaput) {
				t.Errorf("%s: drain error %q does not carry the panic payload", name, err)
			}
		}()
	}

	// The clean co-tenant, racing all five failing models.
	ops := genEquivProgram(321)
	want := runSequential(ops)
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, err := equivTenantSMPSs(pool, ops)
		if err != nil {
			t.Errorf("smpss co-tenant: %v", err)
			return
		}
		if d := equivDiff(got, want); d != "" {
			t.Errorf("smpss co-tenant: %s", d)
		}
	}()

	fail("cellss", func() error {
		rt, err := cellss.NewOn(pool, cellss.Config{Bundle: 2})
		if err != nil {
			return err
		}
		x := make([]float32, 8)
		ok := cellss.NewTaskDef("ok", func(a *cellss.Args) { a.F32(0)[0]++ })
		boom := cellss.NewTaskDef("boom", func(a *cellss.Args) { panic(kaput) })
		rt.Submit(ok, cellss.InOut(x))
		rt.Submit(boom, cellss.InOut(x))
		rt.Submit(ok, cellss.InOut(x))
		return rt.Close()
	})
	fail("supermatrix", func() error {
		rt, err := supermatrix.NewOn(pool, supermatrix.Config{})
		if err != nil {
			return err
		}
		x := make([]float32, 8)
		ok := supermatrix.NewTaskDef("ok", func(a *supermatrix.Args) { a.F32(0)[0]++ })
		boom := supermatrix.NewTaskDef("boom", func(a *supermatrix.Args) { panic(kaput) })
		rt.Submit(ok, supermatrix.InOut(x))
		rt.Submit(boom, supermatrix.InOut(x))
		rt.Submit(ok, supermatrix.InOut(x))
		if err := rt.Execute(); err != nil {
			rt.Close()
			return err
		}
		return rt.Close()
	})
	fail("omptask", func() error {
		rt, err := omptask.NewOn(pool)
		if err != nil {
			return err
		}
		rt.Parallel(func(c *omptask.Ctx) {
			for i := 0; i < 8; i++ {
				i := i
				c.Task(func(*omptask.Ctx) {
					if i == 3 {
						panic(kaput)
					}
				})
			}
			c.Taskwait()
		})
		return rt.Close()
	})
	fail("cilkrt", func() error {
		rt, err := cilkrt.NewOn(pool)
		if err != nil {
			return err
		}
		rt.Run(func(c *cilkrt.Ctx) {
			for i := 0; i < 8; i++ {
				i := i
				c.Spawn(func(*cilkrt.Ctx) {
					if i == 5 {
						panic(kaput)
					}
				})
			}
			c.Sync()
		})
		return rt.Close()
	})
	fail("forkjoin", func() error {
		ctx, err := pool.NewContext(core.ContextConfig{})
		if err != nil {
			return err
		}
		h := forkjoin.On(ctx)
		h.ParallelFor(8, func(part int) {
			if part == 2 {
				panic(kaput)
			}
		})
		return ctx.Close()
	})

	wg.Wait()
	if t.Failed() {
		return
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}
