package repro_test

// Elastic stress: grow/shrink churn under continuous multi-tenant
// submission.  The pool scales between one worker and its ceiling while
// all six hosted programming models run their equivalence programs in
// bursts, so workers retire (spilling deques, releasing scratch,
// rescaling the rename store) and unretire in the middle of live
// dependency graphs.  Every tenant must still reproduce the sequential
// interpreter bit for bit, account for every submitted task, and leave
// zero renamed bytes live.  CI runs this file under -race with
// GOMAXPROCS=4 and -count=2.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/topo"
)

// TestElasticMultiTenantChurn runs three bursts of the six-model
// equivalence workload on one elastic, topology-aware pool, with idle
// gaps between bursts long enough for the hysteresis to park workers.
// The bursts force grows, the gaps force shrinks, and the scaling must
// be invisible to every tenant's results.
func TestElasticMultiTenantChurn(t *testing.T) {
	const (
		minW   = 1
		maxW   = 6
		maxCtx = 8
		rounds = 3
	)
	pool, err := core.NewPool(core.PoolConfig{
		MinWorkers:    minW,
		MaxWorkers:    maxW,
		MaxContexts:   maxCtx,
		ScaleInterval: 100 * time.Microsecond,
		// Two synthetic groups over the full identity space: steal
		// traffic prefers group-local victims while the team breathes.
		Topology: topo.Split(maxCtx+maxW, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i, tn := range equivTenants {
			ops := genEquivProgram(int64(round*100 + i + 1))
			want := runSequential(ops)
			wg.Add(1)
			go func(tn equivTenant, ops []equivOp, want [][]float32) {
				defer wg.Done()
				got, err := tn.run(pool, ops)
				if err != nil {
					t.Errorf("round %d %s: %v", round, tn.name, err)
					return
				}
				if d := equivDiff(got, want); d != "" {
					t.Errorf("round %d %s: %s", round, tn.name, d)
				}
			}(tn, ops, want)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		// Idle gap: > shrinkAfter samples at 100µs, so the controller
		// walks the team back toward the floor before the next burst.
		time.Sleep(20 * time.Millisecond)
	}

	st := pool.Stats()
	if st.Grows == 0 {
		t.Errorf("elastic churn never grew the team (Grows = 0)")
	}
	if st.Shrinks == 0 {
		t.Errorf("elastic churn never shrank the team (Shrinks = 0)")
	}
	if st.ActiveWorkersHigh <= minW {
		t.Errorf("ActiveWorkersHigh = %d, want > %d", st.ActiveWorkersHigh, minW)
	}
	if st.ActiveWorkersLow != minW {
		t.Errorf("ActiveWorkersLow = %d, want %d", st.ActiveWorkersLow, minW)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestElasticAccountsEveryTask is the no-lost-tasks invariant under
// scaling churn: SMPSs tenants submit continuously while the team
// breathes, one tenant is canceled mid-flight, and for every tenant
// executed + poisoned + canceled must equal submitted with zero live
// renamed bytes after its drain.
func TestElasticAccountsEveryTask(t *testing.T) {
	const tenants = 4
	pool, err := core.NewPool(core.PoolConfig{
		MinWorkers:    1,
		MaxWorkers:    4,
		MaxContexts:   tenants,
		ScaleInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]*core.Context, tenants)
	for i := range ctxs {
		c, err := pool.NewContext(core.ContextConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ctxs[i] = c
	}
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i, c := range ctxs {
		ops := genEquivProgram(int64(900 + i))
		wg.Add(1)
		go func(i int, c *core.Context, ops []equivOp) {
			defer wg.Done()
			bufs := freshBuffers()
			// Submit in paced slices so the load crosses the grow
			// threshold repeatedly instead of arriving as one burst.
			for lo := 0; lo < len(ops); lo += 50 {
				hi := lo + 50
				if hi > len(ops) {
					hi = len(ops)
				}
				if err := equivSubmitCore(c, ops[lo:hi], bufs); err != nil {
					// The canceled tenant's submissions start failing;
					// fall through to Barrier, which still drains the
					// already-queued work as canceled skips.
					break
				}
				time.Sleep(500 * time.Microsecond)
			}
			errs[i] = c.Barrier()
		}(i, c, ops)
	}
	time.Sleep(5 * time.Millisecond)
	ctxs[0].Cancel() // one tenant aborts while the team is churning
	wg.Wait()

	for i, c := range ctxs {
		st := c.Stats()
		if st.TasksExecuted+st.Poisoned+st.Canceled != st.TasksSubmitted {
			t.Errorf("tenant %d: executed %d + poisoned %d + canceled %d != submitted %d",
				i, st.TasksExecuted, st.Poisoned, st.Canceled, st.TasksSubmitted)
		}
		if st.LiveRenamedBytes != 0 {
			t.Errorf("tenant %d: %d renamed bytes live after drain", i, st.LiveRenamedBytes)
		}
		if i == 0 {
			var ce *core.CanceledError
			if errs[i] != nil && !errors.As(errs[i], &ce) {
				t.Errorf("canceled tenant: Barrier returned %v, want *CanceledError or nil", errs[i])
			}
			c.Close()
			continue
		}
		if errs[i] != nil {
			t.Errorf("tenant %d: %v", i, errs[i])
			continue
		}
		if err := c.Close(); err != nil {
			t.Errorf("tenant %d: Close: %v", i, err)
		}
	}
	if t.Failed() {
		return
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestElasticChaosShrinkWindow arms the shrink fault site — a seeded
// delay between a retiring worker leaving the live set and evicting its
// deque — together with dropped wakes and steal delays, and runs the
// six-model workload on an aggressively breathing pool.  The widened
// retirement window is exactly where affinity redirects, eviction
// spills and wake hand-offs race; every tenant must stay bit-identical.
func TestElasticChaosShrinkWindow(t *testing.T) {
	chaos.Install(chaos.New(chaos.Config{
		Seed: 0xE1A5,
		Rates: map[chaos.Site]float64{
			chaos.SiteShrink:     1.0,
			chaos.SiteWakeDrop:   0.3,
			chaos.SiteStealDelay: 0.1,
		},
		Delay: 100 * time.Microsecond,
	}))
	defer chaos.Uninstall()

	pool, err := core.NewPool(core.PoolConfig{
		MinWorkers:    1,
		MaxWorkers:    6,
		MaxContexts:   8,
		ScaleInterval: 50 * time.Microsecond,
		Topology:      topo.Split(14, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, tn := range equivTenants {
		ops := genEquivProgram(int64(500 + i))
		want := runSequential(ops)
		wg.Add(1)
		go func(tn equivTenant, ops []equivOp, want [][]float32) {
			defer wg.Done()
			got, err := tn.run(pool, ops)
			if err != nil {
				t.Errorf("%s: %v", tn.name, err)
				return
			}
			if d := equivDiff(got, want); d != "" {
				t.Errorf("%s: %s", tn.name, d)
			}
		}(tn, ops, want)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := pool.Drain(time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}
