package repro_test

// The repository keeps itself clean under its own static-analysis
// suite: every invariant smpssvet enforces (see internal/lint) holds
// over the whole module, or this test names the violations.  Running
// the driver in-process keeps the check inside plain `go test`, so a
// regression cannot land without either a fix or an explicit
// `//lint:allow <analyzer> <reason>` suppression.

import (
	"testing"

	"repro/internal/lint"
)

func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecking the whole module is not short")
	}
	prog, err := lint.Load(".", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.Run(prog, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the finding or add `//lint:allow <analyzer> <reason>` on or above the line")
	}
}
