package repro_test

// Race smoke for the examples that run as tenants of a shared
// core.Pool (quickstart, multitenant, sparse, heat).  Each is built and
// run under the race detector at a deliberately small problem size, so
// the example programs — the documentation the README points at —
// cannot silently rot as the runtime underneath them moves.  Skipped
// under -short: building with -race per example is the expensive part.

import (
	"os/exec"
	"testing"
)

func TestExamplesRaceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example race smoke skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
	}{
		{"quickstart", nil},
		{"multitenant", nil},
		{"failure", nil},
		{"sparse", nil},
		{"heat", []string{"-n", "4", "-m", "16", "-sweeps", "4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"run", "-race", "./examples/" + tc.name}, tc.args...)
			cmd := exec.Command("go", args...)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run -race ./examples/%s failed: %v\n%s", tc.name, err, out)
			}
			t.Logf("%s", out)
		})
	}
}
