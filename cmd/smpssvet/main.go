// Command smpssvet runs the project's static-analysis suite
// (internal/lint): five analyzers encoding the runtime's concurrency
// and wiring invariants — mixed atomic/plain field access, trace-event
// wiring, discarded Submit errors, chaos-site installation, and
// canonical shard lock order.
//
// Usage mirrors smpssbench:
//
//	smpssvet -list                 # print registered analyzer names
//	smpssvet [packages]            # run every analyzer (default ./...)
//	smpssvet -run a,b [packages]   # run a selection
//
// Exit status: 0 clean, 1 findings, 2 usage/load errors.  Findings a
// human has judged acceptable are suppressed in source with
// `//lint:allow <analyzer> <reason>`; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Println(a.Name)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *run != "" {
		var err error
		analyzers, err = lint.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
