// Command cssc is the SMPSs source-to-source compiler front-end: it
// reads a task declaration file — "#pragma css task" annotated C
// prototypes, as in Fig. 2 and Fig. 7 of the paper — and emits a Go
// source file with task definitions and typed submission wrappers
// targeting the runtime.
//
// With -translate it instead performs the C-to-C rewriting of paper §II
// on a whole annotated program: task pragmas are stripped (the source
// then compiles sequentially with any C compiler, §I), task calls become
// css_submit_* runtime calls, and the program-level directives
// (start/finish/barrier/wait on/mutex) become their runtime calls.
//
// Usage:
//
//	cssc -pkg tasks -typedef ELM=int64 -o tasks_gen.go decls.css
//	cssc -ctx -pkg tasks -o tasks_gen.go decls.css
//	cssc -translate -o program_css.c program.c
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cssc"
)

func main() {
	pkg := flag.String("pkg", "tasks", "package name of the generated file")
	out := flag.String("o", "", "output file (default stdout)")
	corePath := flag.String("core", "repro/internal/core", "import path of the runtime package")
	typedefs := flag.String("typedef", "", "comma-separated C=Go type mappings, e.g. ELM=int64,real=float32")
	ctxTarget := flag.Bool("ctx", false, "emit multi-tenant wrappers taking a *core.Context instead of a *core.Runtime")
	translate := flag.Bool("translate", false, "C-to-C mode: rewrite an annotated program into C99 + runtime calls")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cssc [flags] <task-declaration-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	tds := map[string]string{}
	if *typedefs != "" {
		for _, pair := range strings.Split(*typedefs, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "cssc: malformed -typedef entry %q\n", pair)
				os.Exit(2)
			}
			tds[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *translate {
		out2, tasks, err := cssc.Translate(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *out == "" {
			os.Stdout.WriteString(out2)
			return
		}
		if err := os.WriteFile(*out, []byte(out2), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cssc: translated %d tasks to %s\n", len(tasks), *out)
		return
	}
	tasks, err := cssc.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code, err := cssc.Generate(tasks, cssc.Options{Package: *pkg, CorePath: *corePath, Typedefs: tds, Contexts: *ctxTarget})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(code)
		return
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cssc: wrote %d tasks to %s\n", len(tasks), *out)
}
