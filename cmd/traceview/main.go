// Command traceview demonstrates the tracing-enabled runtime of the
// SMPSs toolset (paper §VII.C): it runs a Cholesky decomposition with
// tracing on, writes a Paraver-compatible .prv file, and prints the
// per-task-kind and per-worker summary a Paraver user would extract.
//
// Usage:
//
//	traceview -n 8 -m 64 -threads 4 -o chol.prv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 8, "hyper-matrix dimension in blocks")
	m := flag.Int("m", 64, "block size in elements")
	threads := flag.Int("threads", 4, "worker threads (including main)")
	provider := flag.String("provider", "", "tile-kernel provider: tuned, goto or mkl")
	out := flag.String("o", "", "write a Paraver .prv trace to this file")
	parse := flag.String("parse", "", "summarize an existing .prv instead of running (reads the matching .pcf if present)")
	flag.Parse()

	if *provider != "" && kernels.ByName(*provider).Name != *provider {
		fmt.Fprintf(os.Stderr, "traceview: unknown provider %q (known: %s)\n", *provider, strings.Join(kernels.Names(), ", "))
		os.Exit(2)
	}

	if *parse != "" {
		summarizeFile(*parse)
		return
	}

	tr := trace.New()
	rt := core.New(core.Config{Workers: *threads, Tracer: tr})
	al := linalg.New(rt, kernels.ByName(*provider), *m)
	a := hypermatrix.FromFlat(kernels.GenSPD(*n**m, 1), *n, *m)
	al.CholeskyDense(a)
	if err := rt.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sum := tr.Summarize()
	sum.Format(os.Stdout)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WritePRV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		// Emit the matching .pcf so Paraver shows task names.
		pcfName := strings.TrimSuffix(*out, ".prv") + ".pcf"
		pcf, err := os.Create(pcfName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WritePCF(pcf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pcf.Close()
		fmt.Printf("wrote Paraver trace to %s + %s (%d events)\n", *out, pcfName, len(tr.Events()))
	}
}

// summarizeFile implements -parse: post-mortem analysis of a .prv
// written by a previous run.
func summarizeFile(prvPath string) {
	labels := map[int]string{}
	pcfPath := strings.TrimSuffix(prvPath, ".prv") + ".pcf"
	if pf, err := os.Open(pcfPath); err == nil {
		labels, err = trace.ParsePCF(pf)
		pf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	f, err := os.Open(prvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.ParsePRV(f, labels)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("parsed %d events from %s\n", len(tr.Events()), prvPath)
	tr.Summarize().Format(os.Stdout)
}
