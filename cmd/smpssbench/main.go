// Command smpssbench regenerates the evaluation figures of the SMPSs
// paper (CLUSTER 2008, §VI): Cholesky block-size and thread sweeps
// (Fig. 8, 11), matrix multiplication with on-demand copies (Fig. 12),
// Strassen (Fig. 13), Multisort (Fig. 14) and N-Queens (Fig. 15, 16),
// plus the ablations of DESIGN.md.
//
// Usage:
//
//	smpssbench -exp all                  # everything, default scale
//	smpssbench -exp fig11,fig14 -quick   # selected figures, test scale
//	smpssbench -exp fig08 -dim 4096 -csv # bigger matrix, CSV output
//	smpssbench -tune                     # autotune the kernel engines,
//	                                     # write ~/.smpss/profile.json
//	smpssbench -exp ablation-kernels -json BENCH_kernels.json
//
// Every run auto-loads the machine profile from ~/.smpss/profile.json
// (or -profile PATH) when present, re-blocking the packed kernel
// engines to this host's measured tile shape, kc depth and crossover.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/kernels"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs, or 'all' ("+strings.Join(bench.IDs(), ", ")+")")
	dim := flag.Int("dim", 0, "matrix dimension (default 2048, paper 8192)")
	block := flag.Int("block", 0, "block size for thread sweeps (default 256)")
	threads := flag.Int("threads", 0, "maximum thread count (default GOMAXPROCS)")
	sortKeys := flag.Int("sortkeys", 0, "multisort input size (default 4M)")
	queensN := flag.Int("queens", 0, "N-Queens board size (default 13)")
	contexts := flag.Int("contexts", 0, "client count for ablation-multitenant (default 8)")
	provider := flag.String("provider", "", "tile-kernel provider: simd, tuned, goto or mkl (default tuned; experiments that sweep providers ignore it for the swept series)")
	tune := flag.Bool("tune", false, "run the kernel autotuner and persist the machine profile (to -profile PATH, default "+kernels.DefaultProfilePath()+")")
	profilePath := flag.String("profile", "", "machine profile path to load (and to write under -tune); default "+kernels.DefaultProfilePath()+" when it exists")
	jsonOut := flag.String("json", "", "also write structured results (machine info + every experiment's series) to this file")
	quick := flag.Bool("quick", false, "tiny test-scale configuration")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	list := flag.Bool("list", false, "print the registered experiment IDs, one per line, and exit")
	flag.Parse()

	if *provider != "" && kernels.ByName(*provider).Name != *provider {
		fmt.Fprintf(os.Stderr, "smpssbench: unknown provider %q (known: %s)\n", *provider, strings.Join(kernels.Names(), ", "))
		os.Exit(2)
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := bench.Config{
		Dim:        *dim,
		Block:      *block,
		MaxThreads: *threads,
		SortKeys:   *sortKeys,
		QueensN:    *queensN,
		Contexts:   *contexts,
		Provider:   *provider,
		Quick:      *quick,
	}

	var ids []string
	switch {
	case *tune:
		// -tune runs exactly the tune experiment and persists the
		// measured profile; combine with -json for the raw sweep data.
		out := *profilePath
		if out == "" {
			out = kernels.DefaultProfilePath()
		}
		cfg.ProfileOut = out
		ids = []string{"tune"}
	case *exp == "all":
		ids = bench.IDs()
	default:
		ids = strings.Split(*exp, ",")
	}

	// Outside -tune, re-block the kernel engines from the machine
	// profile: an explicit -profile must load; the default path is
	// best-effort (first run has none).
	if !*tune {
		path, explicit := *profilePath, *profilePath != ""
		if !explicit {
			path = kernels.DefaultProfilePath()
		}
		if _, err := os.Stat(path); err == nil || explicit {
			prof, applied, err := bench.ApplyProfile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "smpssbench: profile %s: %v\n", path, err)
				if explicit {
					os.Exit(2)
				}
			} else {
				cfg.Profile = path
				fmt.Fprintf(os.Stderr, "smpssbench: profile %s (created %s) applied to %s\n",
					path, prof.CreatedAt, strings.Join(applied, ", "))
			}
		}
	}

	var results []*bench.Result
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := bench.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "smpssbench: unknown experiment %q (known: %s)\n", id, strings.Join(bench.IDs(), ", "))
			os.Exit(2)
		}
		res := run(cfg)
		results = append(results, res)
		if *csv {
			fmt.Printf("# %s: %s\n", res.ID, res.Title)
			res.CSV(os.Stdout)
		} else {
			res.Table(os.Stdout)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smpssbench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, cfg, results); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "smpssbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "smpssbench: closing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "smpssbench: wrote %s\n", *jsonOut)
	}
}
