// Command smpssbench regenerates the evaluation figures of the SMPSs
// paper (CLUSTER 2008, §VI): Cholesky block-size and thread sweeps
// (Fig. 8, 11), matrix multiplication with on-demand copies (Fig. 12),
// Strassen (Fig. 13), Multisort (Fig. 14) and N-Queens (Fig. 15, 16),
// plus the ablations of DESIGN.md.
//
// Usage:
//
//	smpssbench -exp all                  # everything, default scale
//	smpssbench -exp fig11,fig14 -quick   # selected figures, test scale
//	smpssbench -exp fig08 -dim 4096 -csv # bigger matrix, CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/kernels"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs, or 'all' ("+strings.Join(bench.IDs(), ", ")+")")
	dim := flag.Int("dim", 0, "matrix dimension (default 2048, paper 8192)")
	block := flag.Int("block", 0, "block size for thread sweeps (default 256)")
	threads := flag.Int("threads", 0, "maximum thread count (default GOMAXPROCS)")
	sortKeys := flag.Int("sortkeys", 0, "multisort input size (default 4M)")
	queensN := flag.Int("queens", 0, "N-Queens board size (default 13)")
	contexts := flag.Int("contexts", 0, "client count for ablation-multitenant (default 8)")
	provider := flag.String("provider", "", "tile-kernel provider: tuned, goto or mkl (default tuned; experiments that sweep providers ignore it for the swept series)")
	quick := flag.Bool("quick", false, "tiny test-scale configuration")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	list := flag.Bool("list", false, "print the registered experiment IDs, one per line, and exit")
	flag.Parse()

	if *provider != "" && kernels.ByName(*provider).Name != *provider {
		fmt.Fprintf(os.Stderr, "smpssbench: unknown provider %q (known: %s)\n", *provider, strings.Join(kernels.Names(), ", "))
		os.Exit(2)
	}

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := bench.Config{
		Dim:        *dim,
		Block:      *block,
		MaxThreads: *threads,
		SortKeys:   *sortKeys,
		QueensN:    *queensN,
		Contexts:   *contexts,
		Provider:   *provider,
		Quick:      *quick,
	}

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := bench.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "smpssbench: unknown experiment %q (known: %s)\n", id, strings.Join(bench.IDs(), ", "))
			os.Exit(2)
		}
		res := run(cfg)
		if *csv {
			fmt.Printf("# %s: %s\n", res.ID, res.Title)
			res.CSV(os.Stdout)
		} else {
			res.Table(os.Stdout)
		}
	}
}
