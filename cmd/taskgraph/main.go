// Command taskgraph regenerates Fig. 5 of the SMPSs paper: the task
// dependency graph created by a block Cholesky decomposition, rendered
// as Graphviz DOT with one node per task (numbered in invocation order,
// colored by task type) and one edge per true dependency.
//
// Usage:
//
//	taskgraph -n 6 -o cholesky6.dot   # the paper's 6×6 graph (56 tasks)
//	taskgraph -n 6 -algo lu -stats    # LU instead, with statistics only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
)

func main() {
	n := flag.Int("n", 6, "hyper-matrix dimension in blocks")
	m := flag.Int("m", 8, "block size in elements (graph shape is size-independent)")
	algo := flag.String("algo", "cholesky", "algorithm: cholesky, lu, matmul, strassen, qr, sparselu, heat")
	provider := flag.String("provider", "", "tile-kernel provider: tuned, goto or mkl (graph shape is provider-independent)")
	out := flag.String("o", "", "output DOT file (default stdout)")
	stats := flag.Bool("stats", false, "print statistics only, no DOT")
	profile := flag.Bool("profile", false, "print the level-by-level parallelism histogram, no DOT")
	flag.Parse()

	if *provider != "" && kernels.ByName(*provider).Name != *provider {
		fmt.Fprintf(os.Stderr, "taskgraph: unknown provider %q (known: %s)\n", *provider, strings.Join(kernels.Names(), ", "))
		os.Exit(2)
	}

	rec := &graph.Recorder{}
	// One worker: no task completes while the graph is being built, so
	// every true dependency is recorded — the same full graph the paper
	// plots.
	rt := core.New(core.Config{Workers: 1, Recorder: rec})
	al := linalg.New(rt, kernels.ByName(*provider), *m)

	switch *algo {
	case "cholesky":
		a := hypermatrix.FromFlat(kernels.GenSPD(*n**m, 1), *n, *m)
		al.CholeskyDense(a)
	case "lu":
		a := hypermatrix.FromFlat(kernels.GenSPD(*n**m, 2), *n, *m)
		al.LU(a)
	case "matmul":
		a := hypermatrix.New(*n, *m)
		b := hypermatrix.New(*n, *m)
		c := hypermatrix.New(*n, *m)
		al.MatMulDense(a, b, c)
	case "strassen":
		a := hypermatrix.New(*n, *m)
		b := hypermatrix.New(*n, *m)
		c := hypermatrix.New(*n, *m)
		al.Strassen(a, b, c)
	case "qr":
		a := hypermatrix.FromFlat(kernels.GenMatrix(*n**m, 3), *n, *m)
		al.QR(a)
	case "sparselu":
		h := apps.GenSparseLU(*n, *m, 0.4, 4)
		if err := apps.SparseLUSMPSs(rt.Context(), h); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "heat":
		h := hypermatrix.New(*n, *m)
		if err := apps.HeatSMPSsGS(rt.Context(), h, apps.HeatBC{Top: 1}, 2); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "taskgraph: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if err := rt.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "taskgraph: %s %d×%d blocks: %d tasks, %d true dependencies, critical path %d, %d roots\n",
		*algo, *n, *n, rec.NumNodes(), rec.NumEdges(), rec.CriticalPathLength(), len(rec.Roots()))
	for label, count := range rec.KindCounts() {
		fmt.Fprintf(os.Stderr, "  %-14s %d\n", label, count)
	}
	if *profile {
		rec.ParallelismProfile().WriteProfile(os.Stdout)
		return
	}
	if *stats {
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteDOT(w, fmt.Sprintf("%s %dx%d", *algo, *n, *n)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
