// Package repro_test holds the testing.B benchmark per paper figure
// (Fig. 5, 8, 11–16) plus ablation and runtime micro-benchmarks.  These
// run at a reduced scale suitable for `go test -bench=.`; the full
// parameter sweeps that regenerate each figure live in cmd/smpssbench
// (see EXPERIMENTS.md for recorded results).
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/forkjoin"
	"repro/internal/graph"
	"repro/internal/hypermatrix"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/omptask"
)

const (
	bDim   = 768 // bench matrix dimension
	bBlock = 128
	bKeys  = 1 << 20
	bN     = 12 // queens board
)

// reportGflops attaches a gflop/s metric to a benchmark.
func reportGflops(b *testing.B, flops float64) {
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflop/s")
}

// BenchmarkFig05GraphBuild measures dependency analysis and graph
// construction alone: the 6×6 Cholesky graph of Fig. 5 (56 tasks), built
// with a single worker so nothing executes during submission.
func BenchmarkFig05GraphBuild(b *testing.B) {
	blk := 8
	spd := kernels.GenSPD(6*blk, 1)
	for i := 0; i < b.N; i++ {
		rec := &graph.Recorder{}
		rt := core.New(core.Config{Workers: 1, Recorder: rec})
		al := linalg.New(rt, kernels.Fast, blk)
		al.CholeskyDense(hypermatrix.FromFlat(spd, 6, blk))
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
		if rec.NumNodes() != 56 {
			b.Fatalf("graph has %d nodes, want 56", rec.NumNodes())
		}
	}
}

// BenchmarkFig08CholeskyBlock sweeps two representative block sizes of
// the Fig. 8 inverted-U (small = overhead-bound, large = starved).
func BenchmarkFig08CholeskyBlock(b *testing.B) {
	for _, blk := range []int{32, 128, 384} {
		if bDim%blk != 0 {
			continue
		}
		b.Run(sizeName(blk), func(b *testing.B) {
			spd := kernels.GenSPD(bDim, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := hypermatrix.FromFlat(spd, bDim/blk, blk)
				rt := core.New(core.Config{})
				al := linalg.New(rt, kernels.Fast, blk)
				b.StartTimer()
				al.CholeskyDense(h)
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
			}
			reportGflops(b, kernels.CholeskyFlops(bDim))
		})
	}
}

// BenchmarkFig11CholeskySMPSs and BenchmarkFig11CholeskyForkJoin are the
// two model families of Fig. 11 at full machine width.
func BenchmarkFig11CholeskySMPSs(b *testing.B) {
	spd := kernels.GenSPD(bDim, 3)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := hypermatrix.FromFlat(spd, bDim/bBlock, bBlock)
		rt := core.New(core.Config{})
		al := linalg.New(rt, kernels.Fast, bBlock)
		b.StartTimer()
		al.CholeskyDense(h)
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportGflops(b, kernels.CholeskyFlops(bDim))
}

func BenchmarkFig11CholeskyForkJoin(b *testing.B) {
	spd := kernels.GenSPD(bDim, 3)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		in := append([]float32(nil), spd...)
		b.StartTimer()
		if !forkjoin.Cholesky(in, bDim, bBlock, 0, kernels.Fast) {
			b.Fatal("not positive definite")
		}
	}
	reportGflops(b, kernels.CholeskyFlops(bDim))
}

// BenchmarkFig12MatMul* compare the Fig. 12 models: SMPSs with on-demand
// block copies versus fork-join flat GEMM.
func BenchmarkFig12MatMulSMPSs(b *testing.B) {
	x := kernels.GenMatrix(bDim, 4)
	y := kernels.GenMatrix(bDim, 5)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := make([]float32, bDim*bDim)
		rt := core.New(core.Config{})
		al := linalg.New(rt, kernels.Fast, bBlock)
		b.StartTimer()
		al.MatMulFlat(x, y, c, bDim/bBlock)
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportGflops(b, kernels.GemmFlops(bDim))
}

func BenchmarkFig12MatMulForkJoin(b *testing.B) {
	x := kernels.GenMatrix(bDim, 4)
	y := kernels.GenMatrix(bDim, 5)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := make([]float32, bDim*bDim)
		b.StartTimer()
		forkjoin.Gemm(x, y, c, bDim, 0, kernels.Fast)
	}
	reportGflops(b, kernels.GemmFlops(bDim))
}

// Strassen benchmarks need a power-of-two block count.
const (
	sDim   = 1024
	sBlock = 128 // 8×8 blocks
)

// BenchmarkFig13Strassen is the renaming-intensive workload.
func BenchmarkFig13Strassen(b *testing.B) {
	n := sDim / sBlock
	x := kernels.GenMatrix(sDim, 6)
	y := kernels.GenMatrix(sDim, 7)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ah := hypermatrix.FromFlat(x, n, sBlock)
		bh := hypermatrix.FromFlat(y, n, sBlock)
		ch := hypermatrix.New(n, sBlock)
		rt := core.New(core.Config{})
		al := linalg.New(rt, kernels.Fast, sBlock)
		b.StartTimer()
		al.Strassen(ah, bh, ch)
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportGflops(b, kernels.StrassenFlops(sDim, sBlock))
}

func benchKeys() []int64 {
	rng := rand.New(rand.NewSource(8))
	keys := make([]int64, bKeys)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	return keys
}

// BenchmarkFig14Multisort* covers the four Fig. 14 implementations.
func BenchmarkFig14MultisortSeq(b *testing.B) {
	orig := benchKeys()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := append([]int64(nil), orig...)
		b.StartTimer()
		apps.MultisortSeq(d, apps.DefaultSortConfig)
	}
}

func BenchmarkFig14MultisortCilk(b *testing.B) {
	orig := benchKeys()
	rt := cilkrt.New(0)
	defer rt.Close()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := append([]int64(nil), orig...)
		b.StartTimer()
		apps.MultisortCilk(rt, d, apps.DefaultSortConfig)
	}
}

func BenchmarkFig14MultisortOMP(b *testing.B) {
	orig := benchKeys()
	rt := omptask.New(0)
	defer rt.Close()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := append([]int64(nil), orig...)
		b.StartTimer()
		apps.MultisortOMP(rt, d, apps.DefaultSortConfig)
	}
}

func BenchmarkFig14MultisortSMPSs(b *testing.B) {
	orig := benchKeys()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := append([]int64(nil), orig...)
		rt := core.New(core.Config{})
		b.StartTimer()
		if err := apps.MultisortSMPSs(rt.Context(), d, apps.DefaultSortConfig); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rt.Close()
		b.StartTimer()
	}
}

// BenchmarkFig15NQueens* covers the Fig. 15/16 implementations.
func BenchmarkFig15NQueensSeq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		apps.NQueensSeq(bN)
	}
}

func BenchmarkFig15NQueensCilk(b *testing.B) {
	rt := cilkrt.New(0)
	defer rt.Close()
	for i := 0; i < b.N; i++ {
		apps.NQueensCilk(rt, bN)
	}
}

func BenchmarkFig15NQueensOMP(b *testing.B) {
	rt := omptask.New(0)
	defer rt.Close()
	for i := 0; i < b.N; i++ {
		apps.NQueensOMP(rt, bN)
	}
}

func BenchmarkFig15NQueensSMPSs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rt := core.New(core.Config{})
		b.StartTimer()
		if _, err := apps.NQueensSMPSs(rt.Context(), bN); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rt.Close()
		b.StartTimer()
	}
}

// BenchmarkFig16NQueens1Thread* provide the one-thread baselines of the
// Fig. 16 self-relative comparison (divide the Fig. 15 benches by these).
func BenchmarkFig16NQueens1ThreadCilk(b *testing.B) {
	rt := cilkrt.New(1)
	defer rt.Close()
	for i := 0; i < b.N; i++ {
		apps.NQueensCilk(rt, bN)
	}
}

func BenchmarkFig16NQueens1ThreadOMP(b *testing.B) {
	rt := omptask.New(1)
	defer rt.Close()
	for i := 0; i < b.N; i++ {
		apps.NQueensOMP(rt, bN)
	}
}

func BenchmarkFig16NQueens1ThreadSMPSs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rt := core.New(core.Config{Workers: 1})
		b.StartTimer()
		if _, err := apps.NQueensSMPSs(rt.Context(), bN); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rt.Close()
		b.StartTimer()
	}
}

// BenchmarkAblationRenaming quantifies the renaming engine on Strassen.
func BenchmarkAblationRenaming(b *testing.B) {
	n := sDim / sBlock
	x := kernels.GenMatrix(sDim, 9)
	y := kernels.GenMatrix(sDim, 10)
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ah := hypermatrix.FromFlat(x, n, sBlock)
				bh := hypermatrix.FromFlat(y, n, sBlock)
				ch := hypermatrix.New(n, sBlock)
				rt := core.New(core.Config{DisableRenaming: disable})
				al := linalg.New(rt, kernels.Fast, sBlock)
				b.StartTimer()
				al.Strassen(ah, bh, ch)
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScheduler compares the locality policy against a
// global FIFO queue on the dense Cholesky.
func BenchmarkAblationScheduler(b *testing.B) {
	spd := kernels.GenSPD(bDim, 11)
	for _, kind := range []core.SchedulerKind{core.SchedLocality, core.SchedGlobalFIFO} {
		name := "locality"
		if kind == core.SchedGlobalFIFO {
			name = "global-fifo"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := hypermatrix.FromFlat(spd, bDim/bBlock, bBlock)
				rt := core.New(core.Config{Scheduler: kind})
				al := linalg.New(rt, kernels.Fast, bBlock)
				b.StartTimer()
				al.CholeskyDense(h)
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
			}
			reportGflops(b, kernels.CholeskyFlops(bDim))
		})
	}
}

// BenchmarkAblationRegions compares region deps against whole-array deps
// on Multisort.
func BenchmarkAblationRegions(b *testing.B) {
	orig := benchKeys()
	for _, coarse := range []bool{false, true} {
		name := "regions"
		if coarse {
			name = "whole-array"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := append([]int64(nil), orig...)
				rt := core.New(core.Config{})
				b.StartTimer()
				var err error
				if coarse {
					err = apps.MultisortSMPSsCoarse(rt.Context(), d, apps.DefaultSortConfig)
				} else {
					err = apps.MultisortSMPSs(rt.Context(), d, apps.DefaultSortConfig)
				}
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				rt.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSubmitOverhead measures the per-task runtime cost (dependency
// analysis + graph + scheduling) with empty task bodies on an inout
// chain — the paper's motivation for ~250µs task granularity (§I).
func BenchmarkSubmitOverhead(b *testing.B) {
	empty := core.NewTaskDef("empty", func(a *core.Args) {})
	x := make([]float32, 1)
	rt := core.New(core.Config{Workers: 2, GraphLimit: 4096})
	defer rt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Submit(empty, core.InOut(x))
	}
	if err := rt.Barrier(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIndependentTaskThroughput measures end-to-end task throughput
// with independent empty tasks across all workers.
func BenchmarkIndependentTaskThroughput(b *testing.B) {
	empty := core.NewTaskDef("empty2", func(a *core.Args) {})
	rt := core.New(core.Config{GraphLimit: 8192})
	defer rt.Close()
	cells := make([][]float32, 64)
	for i := range cells {
		cells[i] = make([]float32, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Submit(empty, core.InOut(cells[i%len(cells)]))
	}
	if err := rt.Barrier(); err != nil {
		b.Fatal(err)
	}
}

func sizeName(n int) string {
	digits := "0123456789"
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf[i:])
}
