package repro_test

// Cross-model equivalence as a multi-tenant stress harness: every
// programming model the paper compares against — the SMPSs runtime
// itself (internal/core), CellSs (internal/cellss), SuperMatrix
// (internal/supermatrix), OpenMP-3.0 tasks (internal/omptask), Cilk
// (internal/cilkrt) and fork-join threaded BLAS (internal/forkjoin) —
// now runs as a tenant of one shared core.Pool.  The harness runs all
// six concurrently, each on its own randomly generated task program,
// and demands bit-identical agreement with a sequential interpreter
// plus strict per-context stats isolation.  The models implement very
// different scheduling architectures (§VII); dependency semantics are
// the part they must agree on, and the shared pool is the part that
// must keep them apart.
//
// The dependency-aware models (smpss, cellss, supermatrix) get the raw
// program: their trackers derive the ordering.  The dependency-unaware
// models (omptask, cilkrt, forkjoin) cannot — the programmer must place
// barriers, so the harness compiles the program into conflict-free
// levels (an op waits for every earlier op that touches one of its
// buffers with at least one writer) and separates levels with the
// model's own barrier: taskwait, sync, or the fork-join join.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cellss"
	"repro/internal/cilkrt"
	"repro/internal/core"
	"repro/internal/forkjoin"
	"repro/internal/omptask"
	"repro/internal/supermatrix"
)

const (
	equivBufs   = 12
	equivBufLen = 8
	equivOps    = 400
)

// equivOp is one random task invocation: distinct buffer indices with a
// directionality each, plus a seed making the body unique.
type equivOp struct {
	bufs  []int
	modes []int // 0 = in, 1 = out, 2 = inout
	seed  float32
}

// genEquivProgram builds a random program.
func genEquivProgram(seed int64) []equivOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]equivOp, equivOps)
	for i := range ops {
		n := 1 + rng.Intn(3)
		perm := rng.Perm(equivBufs)[:n]
		op := equivOp{bufs: perm, seed: float32(rng.Intn(1000))}
		for range perm {
			op.modes = append(op.modes, rng.Intn(3))
		}
		ops[i] = op
	}
	return ops
}

// equivBody computes the task semantics on the effective storage: read
// every input, then overwrite every output as a function of the inputs.
func equivBody(op equivOp, data [][]float32) {
	val := op.seed
	for k, mode := range op.modes {
		if mode == 0 || mode == 2 {
			for _, v := range data[k] {
				val += v
			}
		}
	}
	val = float32(int64(val) % 9973) // keep magnitudes bounded and exact
	for k, mode := range op.modes {
		if mode == 1 || mode == 2 {
			for i := range data[k] {
				data[k][i] = val + float32(i*(k+1))
			}
		}
	}
}

// equivRunOp applies op directly to the user buffers — the execution
// path of the models without renaming or tracked storage.
func equivRunOp(op equivOp, bufs [][]float32) {
	data := make([][]float32, len(op.bufs))
	for k, b := range op.bufs {
		data[k] = bufs[b]
	}
	equivBody(op, data)
}

// equivLevels compiles the program for the dependency-unaware models:
// each op lands on the lowest level above every earlier conflicting op
// (two ops conflict when they share a buffer and at least one writes
// it).  Ops within a level are pairwise independent, so running levels
// in order with a barrier between them reproduces the sequential result
// bit-identically — exactly the hand-placed barriers the paper says
// these models force on the programmer (§VII.B, §VII.D).
func equivLevels(ops []equivOp) [][]equivOp {
	lastWrite := make([]int, equivBufs)
	lastRead := make([]int, equivBufs)
	for b := range lastWrite {
		lastWrite[b], lastRead[b] = -1, -1
	}
	var levels [][]equivOp
	for _, op := range ops {
		lvl := 0
		for k, b := range op.bufs {
			mode := op.modes[k]
			if lastWrite[b]+1 > lvl { // RAW, WAW on the writer side below
				lvl = lastWrite[b] + 1
			}
			if (mode == 1 || mode == 2) && lastRead[b]+1 > lvl { // WAR
				lvl = lastRead[b] + 1
			}
		}
		for k, b := range op.bufs {
			mode := op.modes[k]
			if (mode == 0 || mode == 2) && lvl > lastRead[b] {
				lastRead[b] = lvl
			}
			if (mode == 1 || mode == 2) && lvl > lastWrite[b] {
				lastWrite[b] = lvl
			}
		}
		for len(levels) <= lvl {
			levels = append(levels, nil)
		}
		levels[lvl] = append(levels[lvl], op)
	}
	return levels
}

func freshBuffers() [][]float32 {
	bufs := make([][]float32, equivBufs)
	for i := range bufs {
		bufs[i] = make([]float32, equivBufLen)
		for j := range bufs[i] {
			bufs[i][j] = float32(i + j)
		}
	}
	return bufs
}

// runSequential interprets the program directly.
func runSequential(ops []equivOp) [][]float32 {
	bufs := freshBuffers()
	for _, op := range ops {
		equivRunOp(op, bufs)
	}
	return bufs
}

// equivDiff reports the first mismatch, or "" on bit-identical buffers.
func equivDiff(got, want [][]float32) string {
	for b := range want {
		for i := range want[b] {
			if got[b][i] != want[b][i] {
				return fmt.Sprintf("buffer %d element %d = %g, want %g", b, i, got[b][i], want[b][i])
			}
		}
	}
	return ""
}

func checkEquiv(t *testing.T, model string, got, want [][]float32) {
	t.Helper()
	if d := equivDiff(got, want); d != "" {
		t.Fatalf("%s: %s", model, d)
	}
}

// equivSubmitCore submits the program to an SMPSs context with full
// directionality; the context's tracker derives the ordering.
func equivSubmitCore(ctx *core.Context, ops []equivOp, bufs [][]float32) error {
	for _, op := range ops {
		def := core.NewTaskDef("equiv_op", func(a *core.Args) {
			data := make([][]float32, len(op.bufs))
			for k := range op.bufs {
				data[k] = a.F32(k)
			}
			equivBody(op, data)
		})
		args := make([]core.Arg, len(op.bufs))
		for k, b := range op.bufs {
			switch op.modes[k] {
			case 0:
				args[k] = core.In(bufs[b])
			case 1:
				args[k] = core.Out(bufs[b])
			default:
				args[k] = core.InOut(bufs[b])
			}
		}
		if err := ctx.Submit(def, args...); err != nil {
			return err
		}
	}
	return nil
}

// equivSubmitCellss is equivSubmitCore for the CellSs-model runtime.
func equivSubmitCellss(rt *cellss.Runtime, ops []equivOp, bufs [][]float32) {
	for _, op := range ops {
		def := cellss.NewTaskDef("equiv_op", func(a *cellss.Args) {
			data := make([][]float32, len(op.bufs))
			for k := range op.bufs {
				data[k] = a.F32(k)
			}
			equivBody(op, data)
		})
		args := make([]cellss.Arg, len(op.bufs))
		for k, b := range op.bufs {
			switch op.modes[k] {
			case 0:
				args[k] = cellss.In(bufs[b])
			case 1:
				args[k] = cellss.Out(bufs[b])
			default:
				args[k] = cellss.InOut(bufs[b])
			}
		}
		rt.Submit(def, args...)
	}
}

// equivSubmitSuper is equivSubmitCore for the SuperMatrix-model runtime.
func equivSubmitSuper(rt *supermatrix.Runtime, ops []equivOp, bufs [][]float32) {
	for _, op := range ops {
		def := supermatrix.NewTaskDef("equiv_op", func(a *supermatrix.Args) {
			data := make([][]float32, len(op.bufs))
			for k := range op.bufs {
				data[k] = a.F32(k)
			}
			equivBody(op, data)
		})
		args := make([]supermatrix.Arg, len(op.bufs))
		for k, b := range op.bufs {
			switch op.modes[k] {
			case 0:
				args[k] = supermatrix.In(bufs[b])
			case 1:
				args[k] = supermatrix.Out(bufs[b])
			default:
				args[k] = supermatrix.InOut(bufs[b])
			}
		}
		rt.Submit(def, args...)
	}
}

// An equivTenant runs one model's program on the shared pool and
// returns the resulting buffers.  Each runner also enforces the
// per-tenant isolation invariants: its own stats account for exactly
// its own program, and no renamed byte stays live after the drain.
type equivTenant struct {
	name string
	run  func(pool *core.Pool, ops []equivOp) ([][]float32, error)
}

func equivTenantSMPSs(pool *core.Pool, ops []equivOp) ([][]float32, error) {
	bufs := freshBuffers()
	ctx, err := pool.NewContext(core.ContextConfig{})
	if err != nil {
		return nil, err
	}
	if err := equivSubmitCore(ctx, ops, bufs); err != nil {
		return nil, err
	}
	if err := ctx.Barrier(); err != nil {
		return nil, err
	}
	st := ctx.Stats()
	if st.TasksExecuted != int64(len(ops)) {
		return nil, fmt.Errorf("stats isolation: executed %d, submitted program has %d", st.TasksExecuted, len(ops))
	}
	if st.LiveRenamedBytes != 0 {
		return nil, fmt.Errorf("%d renamed bytes live after drain", st.LiveRenamedBytes)
	}
	if err := ctx.Close(); err != nil {
		return nil, err
	}
	return bufs, nil
}

func equivTenantCellSs(pool *core.Pool, ops []equivOp) ([][]float32, error) {
	bufs := freshBuffers()
	rt, err := cellss.NewOn(pool, cellss.Config{Bundle: 3})
	if err != nil {
		return nil, err
	}
	equivSubmitCellss(rt, ops, bufs)
	if err := rt.Barrier(); err != nil {
		return nil, err
	}
	st := rt.Stats()
	if st.TasksExecuted != int64(len(ops)) {
		return nil, fmt.Errorf("stats isolation: executed %d, submitted program has %d", st.TasksExecuted, len(ops))
	}
	if st.LiveRenamedBytes != 0 {
		return nil, fmt.Errorf("%d renamed bytes live after drain", st.LiveRenamedBytes)
	}
	if err := rt.Close(); err != nil {
		return nil, err
	}
	return bufs, nil
}

func equivTenantSuperMatrix(pool *core.Pool, ops []equivOp) ([][]float32, error) {
	bufs := freshBuffers()
	rt, err := supermatrix.NewOn(pool, supermatrix.Config{})
	if err != nil {
		return nil, err
	}
	equivSubmitSuper(rt, ops, bufs)
	if err := rt.Execute(); err != nil {
		return nil, err
	}
	st := rt.Stats()
	if st.TasksExecuted != int64(len(ops)) {
		return nil, fmt.Errorf("stats isolation: executed %d, submitted program has %d", st.TasksExecuted, len(ops))
	}
	if st.Deps.Renames != 0 {
		return nil, fmt.Errorf("SuperMatrix must not rename, saw %d", st.Deps.Renames)
	}
	if err := rt.Close(); err != nil {
		return nil, err
	}
	return bufs, nil
}

func equivTenantOmpTask(pool *core.Pool, ops []equivOp) ([][]float32, error) {
	bufs := freshBuffers()
	rt, err := omptask.NewOn(pool)
	if err != nil {
		return nil, err
	}
	var executed atomic.Int64
	rt.Parallel(func(c *omptask.Ctx) {
		for _, level := range equivLevels(ops) {
			for _, op := range level {
				c.Task(func(*omptask.Ctx) {
					equivRunOp(op, bufs)
					executed.Add(1)
				})
			}
			c.Taskwait()
		}
	})
	rt.Close()
	if n := executed.Load(); n != int64(len(ops)) {
		return nil, fmt.Errorf("stats isolation: executed %d, program has %d", n, len(ops))
	}
	return bufs, nil
}

func equivTenantCilk(pool *core.Pool, ops []equivOp) ([][]float32, error) {
	bufs := freshBuffers()
	rt, err := cilkrt.NewOn(pool)
	if err != nil {
		return nil, err
	}
	var executed atomic.Int64
	rt.Run(func(c *cilkrt.Ctx) {
		for _, level := range equivLevels(ops) {
			for _, op := range level {
				c.Spawn(func(*cilkrt.Ctx) {
					equivRunOp(op, bufs)
					executed.Add(1)
				})
			}
			c.Sync()
		}
	})
	rt.Close()
	if n := executed.Load(); n != int64(len(ops)) {
		return nil, fmt.Errorf("stats isolation: executed %d, program has %d", n, len(ops))
	}
	return bufs, nil
}

func equivTenantForkJoin(pool *core.Pool, ops []equivOp) ([][]float32, error) {
	bufs := freshBuffers()
	ctx, err := pool.NewContext(core.ContextConfig{})
	if err != nil {
		return nil, err
	}
	h := forkjoin.On(ctx)
	var executed atomic.Int64
	for _, level := range equivLevels(ops) {
		h.ParallelFor(len(level), func(part int) {
			equivRunOp(level[part], bufs)
			executed.Add(1)
		})
	}
	if err := h.Err(); err != nil {
		return nil, err
	}
	st := ctx.Stats()
	if st.LiveRenamedBytes != 0 {
		return nil, fmt.Errorf("%d renamed bytes live after drain", st.LiveRenamedBytes)
	}
	if err := ctx.Close(); err != nil {
		return nil, err
	}
	if n := executed.Load(); n != int64(len(ops)) {
		return nil, fmt.Errorf("stats isolation: executed %d, program has %d", n, len(ops))
	}
	return bufs, nil
}

var equivTenants = []equivTenant{
	{"smpss", equivTenantSMPSs},
	{"cellss", equivTenantCellSs},
	{"supermatrix", equivTenantSuperMatrix},
	{"omptask", equivTenantOmpTask},
	{"cilkrt", equivTenantCilk},
	{"forkjoin", equivTenantForkJoin},
}

// TestModelsEquivalenceMultiTenant is the mixed-workload stress run:
// all six models execute concurrently as tenants of ONE shared pool,
// each on its own random program, and every tenant must reproduce the
// sequential interpreter bit for bit while its stats stay its own.
func TestModelsEquivalenceMultiTenant(t *testing.T) {
	pool, err := core.NewPool(core.PoolConfig{Workers: 8, MaxContexts: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, tn := range equivTenants {
		ops := genEquivProgram(int64(i + 1))
		want := runSequential(ops)
		wg.Add(1)
		go func(tn equivTenant, ops []equivOp, want [][]float32) {
			defer wg.Done()
			got, err := tn.run(pool, ops)
			if err != nil {
				t.Errorf("%s: %v", tn.name, err)
				return
			}
			if d := equivDiff(got, want); d != "" {
				t.Errorf("%s: %s", tn.name, d)
			}
		}(tn, ops, want)
	}
	wg.Wait()
	if n := pool.Contexts(); n != 0 {
		t.Errorf("%d contexts still attached after every tenant closed", n)
	}
	if t.Failed() {
		return // a failed tenant may have left its context attached
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestModelsEquivalenceSingleWorker is the deterministic variant: every
// model at one worker thread, through its single-tenant constructor (the
// thin wrapper kept over the pool hosting), must still match the
// sequential interpreter.
func TestModelsEquivalenceSingleWorker(t *testing.T) {
	ops := genEquivProgram(7)
	want := runSequential(ops)

	{
		bufs := freshBuffers()
		rt := core.New(core.Config{Workers: 1})
		if err := equivSubmitCore(rt.Context(), ops, bufs); err != nil {
			t.Fatal(err)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		checkEquiv(t, "smpss", bufs, want)
	}
	{
		bufs := freshBuffers()
		rt := cellss.New(cellss.Config{Workers: 1, Bundle: 2})
		equivSubmitCellss(rt, ops, bufs)
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		checkEquiv(t, "cellss", bufs, want)
	}
	{
		bufs := freshBuffers()
		rt := supermatrix.New(supermatrix.Config{Workers: 1})
		equivSubmitSuper(rt, ops, bufs)
		if err := rt.Execute(); err != nil {
			t.Fatal(err)
		}
		checkEquiv(t, "supermatrix", bufs, want)
	}
	{
		bufs := freshBuffers()
		rt := omptask.New(1)
		rt.Parallel(func(c *omptask.Ctx) {
			for _, level := range equivLevels(ops) {
				for _, op := range level {
					c.Task(func(*omptask.Ctx) { equivRunOp(op, bufs) })
				}
				c.Taskwait()
			}
		})
		rt.Close()
		checkEquiv(t, "omptask", bufs, want)
	}
	{
		bufs := freshBuffers()
		rt := cilkrt.New(1)
		rt.Run(func(c *cilkrt.Ctx) {
			for _, level := range equivLevels(ops) {
				for _, op := range level {
					c.Spawn(func(*cilkrt.Ctx) { equivRunOp(op, bufs) })
				}
				c.Sync()
			}
		})
		rt.Close()
		checkEquiv(t, "cilkrt", bufs, want)
	}
	{
		bufs := freshBuffers()
		pool, err := core.NewPool(core.PoolConfig{Workers: 1, MaxContexts: 1})
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := pool.NewContext(core.ContextConfig{})
		if err != nil {
			t.Fatal(err)
		}
		h := forkjoin.On(ctx)
		for _, level := range equivLevels(ops) {
			h.ParallelFor(len(level), func(part int) { equivRunOp(level[part], bufs) })
		}
		if err := h.Err(); err != nil {
			t.Fatal(err)
		}
		if err := ctx.Close(); err != nil {
			t.Fatal(err)
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
		checkEquiv(t, "forkjoin", bufs, want)
	}
}

// TestModelsEquivalenceMultiPhase exercises the SuperMatrix phase
// boundary while hosted on a shared pool: two Execute phases over one
// random program, with the tenant's context persisting between them.
func TestModelsEquivalenceMultiPhase(t *testing.T) {
	ops := genEquivProgram(99)
	half := len(ops) / 2
	want := runSequential(ops)

	pool, err := core.NewPool(core.PoolConfig{Workers: 4, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	bufs := freshBuffers()
	rt, err := supermatrix.NewOn(pool, supermatrix.Config{})
	if err != nil {
		t.Fatal(err)
	}
	equivSubmitSuper(rt, ops[:half], bufs)
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	equivSubmitSuper(rt, ops[half:], bufs)
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, "supermatrix-2phase", bufs, want)
}
