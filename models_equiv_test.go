package repro_test

// Cross-model equivalence: the same randomly generated task program must
// produce bit-identical results under the SMPSs runtime (internal/core),
// the CellSs-model runtime (internal/cellss), the SuperMatrix-model
// runtime (internal/supermatrix) and a sequential interpreter.  The three
// runtimes implement very different scheduling architectures (§VII);
// dependency semantics are the part they must agree on.

import (
	"math/rand"
	"testing"

	"repro/internal/cellss"
	"repro/internal/core"
	"repro/internal/supermatrix"
)

const (
	equivBufs   = 12
	equivBufLen = 8
	equivOps    = 400
)

// equivOp is one random task invocation: distinct buffer indices with a
// directionality each, plus a seed making the body unique.
type equivOp struct {
	bufs  []int
	modes []int // 0 = in, 1 = out, 2 = inout
	seed  float32
}

// genEquivProgram builds a random program.
func genEquivProgram(seed int64) []equivOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]equivOp, equivOps)
	for i := range ops {
		n := 1 + rng.Intn(3)
		perm := rng.Perm(equivBufs)[:n]
		op := equivOp{bufs: perm, seed: float32(rng.Intn(1000))}
		for range perm {
			op.modes = append(op.modes, rng.Intn(3))
		}
		ops[i] = op
	}
	return ops
}

// equivBody computes the task semantics on the effective storage: read
// every input, then overwrite every output as a function of the inputs.
func equivBody(op equivOp, data [][]float32) {
	val := op.seed
	for k, mode := range op.modes {
		if mode == 0 || mode == 2 {
			for _, v := range data[k] {
				val += v
			}
		}
	}
	val = float32(int64(val) % 9973) // keep magnitudes bounded and exact
	for k, mode := range op.modes {
		if mode == 1 || mode == 2 {
			for i := range data[k] {
				data[k][i] = val + float32(i*(k+1))
			}
		}
	}
}

func freshBuffers() [][]float32 {
	bufs := make([][]float32, equivBufs)
	for i := range bufs {
		bufs[i] = make([]float32, equivBufLen)
		for j := range bufs[i] {
			bufs[i][j] = float32(i + j)
		}
	}
	return bufs
}

// runSequential interprets the program directly.
func runSequential(ops []equivOp) [][]float32 {
	bufs := freshBuffers()
	for _, op := range ops {
		data := make([][]float32, len(op.bufs))
		for k, b := range op.bufs {
			data[k] = bufs[b]
		}
		equivBody(op, data)
	}
	return bufs
}

func checkEquiv(t *testing.T, model string, got, want [][]float32) {
	t.Helper()
	for b := range want {
		for i := range want[b] {
			if got[b][i] != want[b][i] {
				t.Fatalf("%s: buffer %d element %d = %g, want %g", model, b, i, got[b][i], want[b][i])
			}
		}
	}
}

func TestModelsEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ops := genEquivProgram(seed)
		want := runSequential(ops)

		// SMPSs runtime.
		{
			bufs := freshBuffers()
			rt := core.New(core.Config{Workers: 8})
			for _, op := range ops {
				op := op
				def := core.NewTaskDef("op", func(a *core.Args) {
					data := make([][]float32, len(op.bufs))
					for k := range op.bufs {
						data[k] = a.F32(k)
					}
					equivBody(op, data)
				})
				args := make([]core.Arg, len(op.bufs))
				for k, b := range op.bufs {
					switch op.modes[k] {
					case 0:
						args[k] = core.In(bufs[b])
					case 1:
						args[k] = core.Out(bufs[b])
					default:
						args[k] = core.InOut(bufs[b])
					}
				}
				rt.Submit(def, args...)
			}
			if err := rt.Close(); err != nil {
				t.Fatal(err)
			}
			checkEquiv(t, "smpss", bufs, want)
		}

		// CellSs-model runtime.
		{
			bufs := freshBuffers()
			rt := cellss.New(cellss.Config{Workers: 8, Bundle: 3})
			for _, op := range ops {
				op := op
				def := cellss.NewTaskDef("op", func(a *cellss.Args) {
					data := make([][]float32, len(op.bufs))
					for k := range op.bufs {
						data[k] = a.F32(k)
					}
					equivBody(op, data)
				})
				args := make([]cellss.Arg, len(op.bufs))
				for k, b := range op.bufs {
					switch op.modes[k] {
					case 0:
						args[k] = cellss.In(bufs[b])
					case 1:
						args[k] = cellss.Out(bufs[b])
					default:
						args[k] = cellss.InOut(bufs[b])
					}
				}
				rt.Submit(def, args...)
			}
			if err := rt.Close(); err != nil {
				t.Fatal(err)
			}
			checkEquiv(t, "cellss", bufs, want)
		}

		// SuperMatrix-model runtime (no renaming: storage is always the
		// user's, so results are visible right after Execute).
		{
			bufs := freshBuffers()
			rt := supermatrix.New(supermatrix.Config{Workers: 8})
			for _, op := range ops {
				op := op
				def := supermatrix.NewTaskDef("op", func(a *supermatrix.Args) {
					data := make([][]float32, len(op.bufs))
					for k := range op.bufs {
						data[k] = a.F32(k)
					}
					equivBody(op, data)
				})
				args := make([]supermatrix.Arg, len(op.bufs))
				for k, b := range op.bufs {
					switch op.modes[k] {
					case 0:
						args[k] = supermatrix.In(bufs[b])
					case 1:
						args[k] = supermatrix.Out(bufs[b])
					default:
						args[k] = supermatrix.InOut(bufs[b])
					}
				}
				rt.Submit(def, args...)
			}
			if err := rt.Execute(); err != nil {
				t.Fatal(err)
			}
			checkEquiv(t, "supermatrix", bufs, want)
		}
	}
}

// TestModelsEquivalenceMultiPhase exercises the SuperMatrix phase
// boundary and the CellSs barrier in the middle of a random program.
func TestModelsEquivalenceMultiPhase(t *testing.T) {
	ops := genEquivProgram(99)
	half := len(ops) / 2
	want := runSequential(ops)

	bufs := freshBuffers()
	rt := supermatrix.New(supermatrix.Config{Workers: 4})
	submit := func(op equivOp) {
		def := supermatrix.NewTaskDef("op", func(a *supermatrix.Args) {
			data := make([][]float32, len(op.bufs))
			for k := range op.bufs {
				data[k] = a.F32(k)
			}
			equivBody(op, data)
		})
		args := make([]supermatrix.Arg, len(op.bufs))
		for k, b := range op.bufs {
			switch op.modes[k] {
			case 0:
				args[k] = supermatrix.In(bufs[b])
			case 1:
				args[k] = supermatrix.Out(bufs[b])
			default:
				args[k] = supermatrix.InOut(bufs[b])
			}
		}
		rt.Submit(def, args...)
	}
	for _, op := range ops[:half] {
		submit(op)
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[half:] {
		submit(op)
	}
	if err := rt.Execute(); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, "supermatrix-2phase", bufs, want)
}
